package core

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/geom"
)

// -update regenerates the committed golden detections. Run it after an
// intentional change to detector numerics and review the diff: every
// changed line is a changed detection on the pinned clip.
var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

const goldenPath = "testdata/golden_detections.txt"

// goldenModes are the pyramid modes the fixture pins. Each mode has its
// own expected detections (the modes differ by design); within a mode the
// results must be bit-identical across worker counts and cascade on/off.
var goldenModes = []PyramidMode{ImagePyramid, FeaturePyramid, FeaturePyramidChained}

// goldenSequence renders the pinned synthetic clip. The generator seed is
// fixed and independent of the shared training seed, so the clip never
// shifts when unrelated tests reorder RNG draws.
func goldenSequence(t *testing.T) *dataset.Sequence {
	t.Helper()
	seq, err := dataset.New(4242).MakeSequence(dataset.SequenceConfig{
		W: 320, H: 240, Frames: 3, Pedestrians: 2, FPS: 10,
		ApproachRate: 0.08, WalkSpeedPx: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

// goldenKey identifies one (mode, frame) detection list in the fixture.
func goldenKey(mode PyramidMode, frame int) string {
	return fmt.Sprintf("%s/%d", mode, frame)
}

// formatGoldenLine renders one detection. The score uses hexadecimal
// floating point, which round-trips float64 exactly: the fixture pins
// bits, not decimals.
func formatGoldenLine(key string, d eval.Detection) string {
	return fmt.Sprintf("%s %d %d %d %d %s", key,
		d.Box.Min.X, d.Box.Min.Y, d.Box.W(), d.Box.H(),
		strconv.FormatFloat(d.Score, 'x', -1, 64))
}

// readGolden parses the committed fixture into per-key detection lists.
func readGolden(t *testing.T) map[string][]eval.Detection {
	t.Helper()
	f, err := os.Open(goldenPath)
	if err != nil {
		t.Fatalf("open golden fixture (regenerate with -update): %v", err)
	}
	defer f.Close()
	out := make(map[string][]eval.Detection)
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 6 {
			t.Fatalf("%s:%d: want 6 fields, got %q", goldenPath, line, text)
		}
		var vals [4]int
		for i := 0; i < 4; i++ {
			v, err := strconv.Atoi(fields[i+1])
			if err != nil {
				t.Fatalf("%s:%d: %v", goldenPath, line, err)
			}
			vals[i] = v
		}
		score, err := strconv.ParseFloat(fields[5], 64)
		if err != nil {
			t.Fatalf("%s:%d: %v", goldenPath, line, err)
		}
		out[fields[0]] = append(out[fields[0]], eval.Detection{
			Box:   geom.XYWH(vals[0], vals[1], vals[2], vals[3]),
			Score: score,
		})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// writeGolden rewrites the fixture from freshly computed detections.
func writeGolden(t *testing.T, got map[string][]eval.Detection) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString("# Golden end-to-end detections for the pinned synthetic clip\n")
	b.WriteString("# (dataset seed 4242, 320x240, 3 frames, 2 pedestrians).\n")
	b.WriteString("# Format: <mode>/<frame> x y w h score-hex\n")
	b.WriteString("# Regenerate: go test ./internal/core/ -run TestGoldenDetections -update\n")
	for _, mode := range goldenModes {
		for f := 0; ; f++ {
			dets, ok := got[goldenKey(mode, f)]
			if !ok {
				break
			}
			for _, d := range dets {
				b.WriteString(formatGoldenLine(goldenKey(mode, f), d))
				b.WriteByte('\n')
			}
		}
	}
	if err := os.WriteFile(goldenPath, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("golden fixture rewritten: %s", goldenPath)
}

// TestGoldenDetections is the end-to-end regression pin: the trained
// detector's full-scan output on a committed synthetic clip must match the
// committed expectations bit for bit, and must stay bit-identical when the
// scan is sharded across workers or routed through the exact cascade. Any
// numerics change — feature extraction, scoring order, NMS — shows up here
// as a concrete detection diff.
func TestGoldenDetections(t *testing.T) {
	det, _ := testDetector(t)
	seq := goldenSequence(t)

	baseCfg := DefaultConfig()
	detect := func(mode PyramidMode, workers int, cascade CascadeMode) [][]eval.Detection {
		cfg := baseCfg
		cfg.Mode = mode
		cfg.Workers = workers
		cfg.Cascade = cascade
		d, err := NewDetector(det.Model(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := make([][]eval.Detection, len(seq.Frames))
		for f, frame := range seq.Frames {
			dets, err := d.Detect(frame)
			if err != nil {
				t.Fatal(err)
			}
			out[f] = dets
		}
		return out
	}

	sameDets := func(a, b []eval.Detection) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	got := make(map[string][]eval.Detection)
	for _, mode := range goldenModes {
		baseline := detect(mode, 1, CascadeOff)
		total := 0
		for f, dets := range baseline {
			got[goldenKey(mode, f)] = dets
			total += len(dets)
		}
		if total == 0 {
			t.Errorf("%s: zero detections across the whole clip — the fixture pins nothing", mode)
		}
		// Bit-identical across worker counts and cascade on/off: these
		// variants change scheduling and evaluation order, never results.
		for _, v := range []struct {
			name    string
			workers int
			cascade CascadeMode
		}{
			{"workers=4", 4, CascadeOff},
			{"cascade", 1, CascadeExact},
			{"workers=4+cascade", 4, CascadeExact},
		} {
			alt := detect(mode, v.workers, v.cascade)
			for f := range baseline {
				if !sameDets(baseline[f], alt[f]) {
					t.Errorf("%s frame %d: %s diverged from the single-worker dense scan\n got: %v\nwant: %v",
						mode, f, v.name, alt[f], baseline[f])
				}
			}
		}
	}

	if *updateGolden {
		writeGolden(t, got)
		return
	}
	want := readGolden(t)
	if len(want) == 0 {
		t.Fatalf("golden fixture %s is empty (regenerate with -update)", goldenPath)
	}
	for _, mode := range goldenModes {
		for f := range seq.Frames {
			key := goldenKey(mode, f)
			if !sameDets(got[key], want[key]) {
				t.Errorf("%s: detections diverged from the committed fixture\n got: %v\nwant: %v\n(intentional numerics change? rerun with -update and review the diff)",
					key, got[key], want[key])
			}
		}
	}
	// The fixture must not carry stale keys for retired modes/frames.
	for key := range want {
		if _, ok := got[key]; !ok {
			t.Errorf("golden fixture has stale key %q (regenerate with -update)", key)
		}
	}
}
