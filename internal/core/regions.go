package core

import (
	"math"

	"repro/internal/geom"
)

// RegionSet is the mutable region-of-interest holder behind
// Config.Regions: a set of frame-pixel rectangles that restricts the
// sliding-window scan. While the set is active, a window is scanned if and
// only if its center lies inside one of the rectangles (mapped through the
// pyramid geometry of each level); while inactive, the detector scans
// dense. The center rule makes the restricted scan an exact filter of the
// dense scan — the ROI detections are precisely the dense detections whose
// window center falls in a region, in the same raster order — which is
// what the differential tests pin.
//
// Like an Arena, a RegionSet is shared by every detector built from the
// same config (the streaming runtime hands one to all its degradation
// rungs) and holds reusable buffers: the rectangle copy made by Set and
// the per-level anchor spans computed each frame all live here, so the
// restricted scan path stays inside the detect allocation budget
// (TestDetectAllocsROI).
//
// A RegionSet serves one in-flight frame at a time: Set and Clear must not
// run concurrently with a Detect using the same set, and two frames must
// not scan under one set concurrently. The streaming runtime satisfies
// this by construction (its scan loop plans regions and scans strictly in
// sequence); standalone users drive Set/Detect from one goroutine.
type RegionSet struct {
	active bool
	rects  []geom.Rect
	// Per-frame scratch, all reused across frames: spans holds every
	// level's disjoint anchor spans (levels view subslices of it), cand
	// the per-rect candidate spans of the level in progress, ys and xs the
	// sweep boundaries of the disjoint decomposition.
	spans []anchorSpan
	cand  []anchorSpan
	ys    []int
	xs    []int
}

// NewRegionSet returns an inactive region set (detectors scan dense).
func NewRegionSet() *RegionSet { return &RegionSet{} }

// Set activates the restriction with a copy of rects, reusing the internal
// buffer. An empty slice is a legitimate active set: nothing is scanned
// (no live tracks means no windows can match until the next full scan).
func (rs *RegionSet) Set(rects []geom.Rect) {
	rs.rects = append(rs.rects[:0], rects...)
	rs.active = true
}

// Clear deactivates the restriction: detectors scan dense again.
func (rs *RegionSet) Clear() {
	rs.active = false
	rs.rects = rs.rects[:0]
}

// Active reports whether the restriction is in effect.
func (rs *RegionSet) Active() bool { return rs != nil && rs.active }

// Rects returns the active rectangles (a view of the internal buffer,
// valid until the next Set or Clear; nil when inactive).
func (rs *RegionSet) Rects() []geom.Rect {
	if rs == nil || !rs.active {
		return nil
	}
	return rs.rects
}

// anchorSpan is one contiguous rectangle of window anchors of one pyramid
// level, in block coordinates: anchors (bx, by) with bx in [bx0, bx1) and
// by in [by0, by1). A level's spans are pairwise disjoint and, among spans
// sharing a block row, ordered by ascending bx0, so scanning a row's spans
// left to right visits each qualifying anchor exactly once in strictly
// ascending bx — the same raster order a dense scan produces, which keeps
// restricted detections deterministic at every worker count.
type anchorSpan struct {
	bx0, bx1, by0, by1 int
}

// applyRegions maps the active region set into per-level anchor spans,
// attaching them to the levels about to be scanned. With no active set the
// levels keep their nil spans (dense scan). Span storage is the set's
// reusable scratch, pre-grown to the worst case of the disjoint
// decomposition so the per-level subslices stay valid while later levels
// append.
func (d *Detector) applyRegions(levels []pyrLevel) {
	rs := d.cfg.Regions
	if rs == nil || !rs.active {
		return
	}
	wbx, wby := d.cfg.windowBlocks()
	cell := d.cfg.HOG.CellSize
	n := len(rs.rects)
	// disjointSpans emits at most one span per (y-strip, rect) pair:
	// <= (2n-1) strips x n intervals per level.
	perLevel := n * (2*n - 1)
	if perLevel < 1 {
		perLevel = 1 // keep the scratch non-nil: empty-but-active skips levels
	}
	if need := len(levels) * perLevel; cap(rs.spans) < need {
		rs.spans = make([]anchorSpan, 0, need)
	}
	buf := rs.spans[:0]
	for i := range levels {
		l := &levels[i]
		nx := l.fm.BlocksX - wbx + 1
		ny := l.fm.BlocksY - wby + 1
		start := len(buf)
		if nx > 0 && ny > 0 {
			cand := rs.cand[:0]
			for _, r := range rs.rects {
				if sp, ok := regionAnchorSpan(r, l.sx, l.sy, cell, d.cfg.WindowW, d.cfg.WindowH, nx, ny); ok {
					cand = append(cand, sp)
				}
			}
			rs.cand = cand
			buf = rs.disjointSpans(buf, cand)
		}
		l.spans = buf[start:]
	}
	rs.spans = buf[:0]
}

// regionAnchorSpan maps one frame-pixel region into the window-anchor span
// of a level with per-axis scales sx, sy: the anchors whose window center
// lands inside the region after outward-rounded projection into level
// pixels. ok is false when no anchor qualifies (the region is off-level or
// falls between anchor centers).
func regionAnchorSpan(r geom.Rect, sx, sy float64, cell, winW, winH, nx, ny int) (anchorSpan, bool) {
	// Region corners in level pixels, rounded outward so every frame pixel
	// of the region stays covered.
	lx0 := int(math.Floor(float64(r.Min.X) / sx))
	ly0 := int(math.Floor(float64(r.Min.Y) / sy))
	lx1 := int(math.Ceil(float64(r.Max.X) / sx))
	ly1 := int(math.Ceil(float64(r.Max.Y) / sy))
	// Anchor (bx, by) has its window center at (bx*cell + winW/2,
	// by*cell + winH/2) level pixels; solve lx0 <= center < lx1 for bx.
	sp := anchorSpan{
		bx0: ceilDiv(lx0-winW/2, cell),
		by0: ceilDiv(ly0-winH/2, cell),
		bx1: floorDiv(lx1-1-winW/2, cell) + 1,
		by1: floorDiv(ly1-1-winH/2, cell) + 1,
	}
	if sp.bx0 < 0 {
		sp.bx0 = 0
	}
	if sp.by0 < 0 {
		sp.by0 = 0
	}
	if sp.bx1 > nx {
		sp.bx1 = nx
	}
	if sp.by1 > ny {
		sp.by1 = ny
	}
	if sp.bx0 >= sp.bx1 || sp.by0 >= sp.by1 {
		return anchorSpan{}, false
	}
	return sp, true
}

// disjointSpans appends to dst a pairwise-disjoint span set covering
// exactly the union of the candidate spans: a sweep over the candidates'
// by-boundaries partitions the rows into strips, and within each strip the
// active bx-intervals are merged one-dimensionally (exactly). Unlike a
// bounding-box merge this never covers an anchor no candidate covers, so
// the restricted scan stays an exact filter of the dense scan even when
// regions overlap. Within a strip the intervals come out in ascending bx
// order, and spans of different strips never share a row — the invariant
// scanLevelRows needs for raster-order output. All scratch lives on the
// receiver; nothing allocates once the buffers have grown.
func (rs *RegionSet) disjointSpans(dst, cand []anchorSpan) []anchorSpan {
	if len(cand) == 0 {
		return dst
	}
	ys := rs.ys[:0]
	for _, sp := range cand {
		ys = append(ys, sp.by0, sp.by1)
	}
	insertionSortInts(ys)
	ys = dedupeInts(ys)
	rs.ys = ys
	for k := 0; k+1 < len(ys); k++ {
		y0, y1 := ys[k], ys[k+1]
		// bx-intervals of candidates active in this strip, as flat
		// (x0, x1) pairs. A candidate either spans the whole strip or
		// misses it entirely (strip edges are candidate edges).
		xs := rs.xs[:0]
		for _, sp := range cand {
			if sp.by0 <= y0 && sp.by1 >= y1 {
				xs = append(xs, sp.bx0, sp.bx1)
			}
		}
		rs.xs = xs
		if len(xs) == 0 {
			continue
		}
		insertionSortPairs(xs)
		// Merge overlapping or touching intervals and emit one span each.
		x0, x1 := xs[0], xs[1]
		for p := 2; p < len(xs); p += 2 {
			if xs[p] <= x1 {
				if xs[p+1] > x1 {
					x1 = xs[p+1]
				}
				continue
			}
			dst = append(dst, anchorSpan{bx0: x0, bx1: x1, by0: y0, by1: y1})
			x0, x1 = xs[p], xs[p+1]
		}
		dst = append(dst, anchorSpan{bx0: x0, bx1: x1, by0: y0, by1: y1})
	}
	return dst
}

// insertionSortInts sorts in place without allocating (sort.Ints's
// interface conversion would put the slice header on the heap each frame).
func insertionSortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// dedupeInts compacts a sorted slice to unique values.
func dedupeInts(s []int) []int {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// insertionSortPairs sorts flat (x0, x1) pairs by x0 in place.
func insertionSortPairs(s []int) {
	for i := 2; i < len(s); i += 2 {
		for j := i; j > 0 && s[j] < s[j-2]; j -= 2 {
			s[j], s[j-2] = s[j-2], s[j]
			s[j+1], s[j-1] = s[j-1], s[j+1]
		}
	}
}

// floorDiv and ceilDiv are integer division rounding toward -inf / +inf
// (Go's / truncates toward zero, which is wrong for the negative offsets
// that arise near the frame origin). b must be positive.
func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func ceilDiv(a, b int) int { return -floorDiv(-a, b) }
