package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/eval"
	"repro/internal/imgproc"
)

// Multi-class detection: the paper points out that "employing several
// instances of the SVM classifier could provide real-time multiple object
// detection capability which is highly demanded in applications such as
// driver assistance systems" — the same HOG feature stream feeds one SVM
// model per object class (pedestrians, vehicles, ...). This file provides
// the software counterpart: several Detectors (possibly with different
// window geometries) run over one frame.

// Class pairs a label with its trained detector.
type Class struct {
	Name     string
	Detector *Detector
}

// ClassDetection is a detection tagged with its object class.
type ClassDetection struct {
	Class string
	eval.Detection
}

// MultiDetector runs several single-class detectors over a frame. When the
// classes share a HOG configuration the hardware shares one extractor; in
// software each detector currently extracts independently (the cycle model
// in hw/accel accounts for the shared-extractor case).
type MultiDetector struct {
	classes []Class
}

// NewMultiDetector validates and bundles the classes.
func NewMultiDetector(classes ...Class) (*MultiDetector, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("core: multi-detector needs at least one class")
	}
	seen := map[string]bool{}
	for _, c := range classes {
		if c.Name == "" {
			return nil, fmt.Errorf("core: class with empty name")
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("core: duplicate class %q", c.Name)
		}
		seen[c.Name] = true
		if c.Detector == nil {
			return nil, fmt.Errorf("core: class %q has no detector", c.Name)
		}
	}
	return &MultiDetector{classes: append([]Class(nil), classes...)}, nil
}

// Classes returns the configured class names in order.
func (m *MultiDetector) Classes() []string {
	out := make([]string, len(m.classes))
	for i, c := range m.classes {
		out[i] = c.Name
	}
	return out
}

// Detect runs every class detector over the frame concurrently and merges
// the results, highest score first. NMS is applied per class by each
// detector; classes do not suppress each other (a pedestrian next to a car
// is two objects).
func (m *MultiDetector) Detect(frame *imgproc.Gray) ([]ClassDetection, error) {
	results := make([][]ClassDetection, len(m.classes))
	errs := make([]error, len(m.classes))
	var wg sync.WaitGroup
	for i, c := range m.classes {
		wg.Add(1)
		go func(i int, c Class) {
			defer wg.Done()
			dets, err := c.Detector.Detect(frame)
			if err != nil {
				errs[i] = fmt.Errorf("core: class %q: %w", c.Name, err)
				return
			}
			out := make([]ClassDetection, len(dets))
			for j, d := range dets {
				out[j] = ClassDetection{Class: c.Name, Detection: d}
			}
			results[i] = out
		}(i, c)
	}
	wg.Wait()
	// Report every failed class, not just the first: with independent
	// per-class models one poison model should not mask another's error.
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	var merged []ClassDetection
	for _, r := range results {
		merged = append(merged, r...)
	}
	// Sort by descending score, stable across classes (equal scores keep
	// configured class order).
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].Score > merged[j].Score })
	return merged, nil
}
