package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/hog"
	"repro/internal/imgproc"
	"repro/internal/svm"
)

// ExtractDescriptors computes the HOG descriptor of every window in the
// set, returning a feature matrix aligned with the set's labels. Windows
// must match the configured window size.
func ExtractDescriptors(set *dataset.Set, cfg Config) ([][]float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	x := make([][]float64, 0, set.Len())
	for i, img := range set.Images {
		if img.W != cfg.WindowW || img.H != cfg.WindowH {
			return nil, fmt.Errorf("core: window %d is %dx%d, want %dx%d",
				i, img.W, img.H, cfg.WindowW, cfg.WindowH)
		}
		d, err := hog.Descriptor(img, cfg.HOG)
		if err != nil {
			return nil, fmt.Errorf("core: window %d: %w", i, err)
		}
		x = append(x, d)
	}
	return x, nil
}

// TrainOptions bundles the SVM solver configuration and the optional
// hard-negative mining loop.
type TrainOptions struct {
	SVM svm.TrainConfig
	// MineRounds is the number of hard-negative mining rounds; 0 disables
	// mining (Dalal-Triggs use one round on INRIA).
	MineRounds int
	// MineScenes are pedestrian-free frames scanned for false positives
	// during mining.
	MineScenes []*imgproc.Gray
	// MineMax caps the negatives added per round.
	MineMax int
}

// DefaultTrainOptions returns sensible defaults for the synthetic protocol:
// a mildly regularized L2-loss solver and no mining.
func DefaultTrainOptions() TrainOptions {
	tc := svm.DefaultTrainConfig()
	tc.C = 0.01
	tc.Tol = 0.05
	return TrainOptions{SVM: tc, MineMax: 500}
}

// Train fits a detector model on a window set, optionally followed by
// hard-negative mining rounds: after each round the detector scans the
// mining scenes and the highest-scoring false alarms join the negative set,
// exactly the bootstrapping procedure of Dalal-Triggs that LibLinear-based
// pipelines (including the paper's) rely on.
func Train(set *dataset.Set, cfg Config, opts TrainOptions) (*Detector, error) {
	x, err := ExtractDescriptors(set, cfg)
	if err != nil {
		return nil, err
	}
	labels := append([]int(nil), set.Labels...)
	res, err := svm.Train(x, labels, opts.SVM)
	if err != nil {
		return nil, err
	}
	det, err := NewDetector(res.Model, cfg)
	if err != nil {
		return nil, err
	}
	for round := 0; round < opts.MineRounds && len(opts.MineScenes) > 0; round++ {
		added := 0
		for _, scene := range opts.MineScenes {
			if added >= opts.MineMax {
				break
			}
			fps, err := det.hardNegatives(scene, opts.MineMax-added)
			if err != nil {
				return nil, fmt.Errorf("core: mining round %d: %w", round, err)
			}
			for _, d := range fps {
				x = append(x, d)
				labels = append(labels, -1)
				added++
			}
		}
		if added == 0 {
			break
		}
		res, err = svm.Train(x, labels, opts.SVM)
		if err != nil {
			return nil, err
		}
		det, err = NewDetector(res.Model, cfg)
		if err != nil {
			return nil, err
		}
	}
	return det, nil
}

// hardNegatives scans a pedestrian-free frame and returns the descriptors
// of up to max false-positive windows, strongest first.
func (d *Detector) hardNegatives(frame *imgproc.Gray, max int) ([][]float64, error) {
	dets, err := d.Detect(frame)
	if err != nil {
		return nil, err
	}
	fm, err := hog.Compute(frame, d.cfg.HOG)
	if err != nil {
		return nil, err
	}
	wbx, wby := d.cfg.windowBlocks()
	cell := d.cfg.HOG.CellSize
	var out [][]float64
	for _, det := range dets {
		if len(out) >= max {
			break
		}
		// Only mine native-scale detections: their descriptors can be read
		// straight from the base feature map.
		if det.Box.W() != d.cfg.WindowW || det.Box.H() != d.cfg.WindowH {
			continue
		}
		bx, by := det.Box.Min.X/cell, det.Box.Min.Y/cell
		if w := fm.Window(bx, by, wbx, wby); w != nil {
			out = append(out, w)
		}
	}
	return out, nil
}

// EvaluateOnScene runs the detector on a frame with known ground truth and
// returns the match result at the given IoU threshold — the detector-level
// integration metric used by tests and examples.
func (d *Detector) EvaluateOnScene(scene *dataset.Scene, iou float64) (eval.MatchResult, error) {
	dets, err := d.Detect(scene.Frame)
	if err != nil {
		return eval.MatchResult{}, err
	}
	return eval.MatchDetections(dets, scene.Truth, iou), nil
}
