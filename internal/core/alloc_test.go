package core

import (
	"math/rand"
	"testing"

	"repro/internal/imgproc"
	"repro/internal/svm"
)

// TestDetectAllocs pins the steady-state allocation budget of the whole
// detect path in feature-pyramid mode. The arena keeps the HOG front end
// allocation-free and featpyr's level pool recycles the pyramid maps, so
// what remains per frame is a small fixed set: the level/detection slices
// and the release closure. The budget has headroom over the measured count
// (~22 on this container) but sits orders of magnitude below the ~70 allocs
// / 10 MB per frame the seed tree paid; a regression past it means
// per-frame garbage crept back into the hot path.
func TestDetectAllocs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 1
	// A zero-weight model scores every window at the bias: keep it below
	// threshold so no detection slices grow during the measurement.
	model := &svm.Model{W: make([]float64, cfg.DescriptorLen()), B: -1}
	d, err := NewDetector(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	frame := imgproc.NewGray(320, 240)
	for i := range frame.Pix {
		frame.Pix[i] = uint8(rng.Intn(256))
	}
	// Warm the arena and the featpyr level pool.
	for i := 0; i < 3; i++ {
		if _, err := d.Detect(frame); err != nil {
			t.Fatal(err)
		}
	}
	const budget = 32
	n := testing.AllocsPerRun(20, func() {
		if _, err := d.Detect(frame); err != nil {
			t.Fatal(err)
		}
	})
	if n > budget {
		t.Errorf("Detect: %v allocs/op in steady state, budget %d", n, budget)
	}
}
