package core

import (
	"math/rand"
	"testing"

	"repro/internal/imgproc"
	"repro/internal/obs"
	"repro/internal/svm"
)

// TestDetectAllocs pins the steady-state allocation budget of the whole
// detect path in feature-pyramid mode. The arena keeps the HOG front end
// allocation-free and featpyr's level pool recycles the pyramid maps, so
// what remains per frame is a small fixed set: the level/detection slices
// and the release closure. The budget has headroom over the measured count
// (~22 on this container) but sits orders of magnitude below the ~70 allocs
// / 10 MB per frame the seed tree paid; a regression past it means
// per-frame garbage crept back into the hot path.
func TestDetectAllocs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 1
	// A zero-weight model scores every window at the bias: keep it below
	// threshold so no detection slices grow during the measurement.
	model := &svm.Model{W: make([]float64, cfg.DescriptorLen()), B: -1}
	d, err := NewDetector(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	frame := imgproc.NewGray(320, 240)
	for i := range frame.Pix {
		frame.Pix[i] = uint8(rng.Intn(256))
	}
	// Warm the arena and the featpyr level pool.
	for i := 0; i < 3; i++ {
		if _, err := d.Detect(frame); err != nil {
			t.Fatal(err)
		}
	}
	const budget = 32
	n := testing.AllocsPerRun(20, func() {
		if _, err := d.Detect(frame); err != nil {
			t.Fatal(err)
		}
	})
	if n > budget {
		t.Errorf("Detect: %v allocs/op in steady state, budget %d", n, budget)
	}
}

// TestDetectAllocsMetricsOn re-pins the TestDetectAllocs budget with the
// observability layer enabled: stage timing, per-level resample histograms,
// and arena counters must all record without adding a single steady-state
// allocation to the detect path.
func TestDetectAllocsMetricsOn(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 1
	cfg.Metrics = obs.NewDetectRecorder(obs.NewMetrics())
	model := &svm.Model{W: make([]float64, cfg.DescriptorLen()), B: -1}
	d, err := NewDetector(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	frame := imgproc.NewGray(320, 240)
	for i := range frame.Pix {
		frame.Pix[i] = uint8(rng.Intn(256))
	}
	for i := 0; i < 3; i++ {
		if _, err := d.Detect(frame); err != nil {
			t.Fatal(err)
		}
	}
	const budget = 32
	n := testing.AllocsPerRun(20, func() {
		if _, err := d.Detect(frame); err != nil {
			t.Fatal(err)
		}
	})
	if n > budget {
		t.Errorf("Detect with metrics: %v allocs/op in steady state, budget %d", n, budget)
	}
	m := cfg.Metrics.Metrics()
	for _, st := range []obs.Stage{obs.StageHOGCells, obs.StageHOGNorm, obs.StagePyramid, obs.StageScan, obs.StageNMS} {
		if m.Stage[st].Snapshot().Count == 0 {
			t.Errorf("stage %s recorded nothing with metrics enabled", st)
		}
	}
	if m.PyrLevel.Snapshot().Count == 0 {
		t.Error("pyramid-level histogram recorded nothing")
	}
	if gets, _ := d.arena.Counters(); gets == 0 {
		t.Error("arena counters recorded no checkouts")
	}
}
