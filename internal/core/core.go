// Package core implements the paper's primary contribution as a library:
// multi-scale sliding-window pedestrian detection with HOG features and a
// linear SVM, supporting both the conventional image-pyramid method and the
// proposed HOG-feature-pyramid method (Section 4), plus the two
// single-window classification scenarios of Figure 3 used by the Table 1 /
// Figure 4 analysis.
package core

import (
	"fmt"

	"repro/internal/eval"
	"repro/internal/featpyr"
	"repro/internal/geom"
	"repro/internal/hog"
	"repro/internal/imgproc"
	"repro/internal/svm"
)

// PyramidMode selects how the detector covers scales.
type PyramidMode int

const (
	// ImagePyramid is the conventional method: the frame is resized per
	// scale and HOG features are recomputed at every level.
	ImagePyramid PyramidMode = iota
	// FeaturePyramid is the paper's method: HOG features are extracted
	// once at native scale and the normalized feature map is down-sampled
	// per level (each level interpolated directly from the base map).
	FeaturePyramid
	// FeaturePyramidChained down-samples each level from the previous one,
	// matching the hardware's cascaded scaler modules (Figure 6).
	FeaturePyramidChained
	// FeaturePyramidFixed is FeaturePyramidChained computed with the
	// bit-accurate shift-and-add fixed-point scaler.
	FeaturePyramidFixed
)

// String implements fmt.Stringer.
func (m PyramidMode) String() string {
	switch m {
	case ImagePyramid:
		return "image-pyramid"
	case FeaturePyramid:
		return "feature-pyramid"
	case FeaturePyramidChained:
		return "feature-pyramid-chained"
	case FeaturePyramidFixed:
		return "feature-pyramid-fixed"
	}
	return fmt.Sprintf("PyramidMode(%d)", int(m))
}

// Config holds the detector parameters. Use DefaultConfig as a baseline.
type Config struct {
	HOG     hog.Config
	WindowW int // detection window width in pixels (64)
	WindowH int // detection window height in pixels (128)
	// ScaleStep is the pyramid ratio between adjacent scales (1.1).
	ScaleStep float64
	// MaxScales caps the number of pyramid levels; 0 means as many as fit.
	// The paper's hardware uses 2 (memory-limited, Section 5).
	MaxScales int
	// Mode selects image- versus feature-pyramid detection.
	Mode PyramidMode
	// Threshold is the SVM decision threshold: windows scoring above it
	// are detections.
	Threshold float64
	// NMSOverlap is the IoU above which overlapping detections are
	// suppressed; <= 0 disables NMS.
	NMSOverlap float64
	// Interp is the resampling kernel for the image pyramid.
	Interp imgproc.Interp
	// Scale configures the float feature scaler.
	Scale featpyr.ScaleConfig
	// Fixed configures the fixed-point scaler (FeaturePyramidFixed); nil
	// uses featpyr.NewFixedScaler defaults.
	Fixed *featpyr.FixedScaler
}

// DefaultConfig returns the paper's detector configuration with the
// feature-pyramid mode and unlimited scales.
func DefaultConfig() Config {
	return Config{
		HOG:        hog.DefaultConfig(),
		WindowW:    64,
		WindowH:    128,
		ScaleStep:  1.1,
		Mode:       FeaturePyramid,
		Threshold:  0,
		NMSOverlap: 0.3,
		Interp:     imgproc.Bilinear,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.HOG.Validate(); err != nil {
		return err
	}
	if c.WindowW < c.HOG.CellSize || c.WindowH < c.HOG.CellSize {
		return fmt.Errorf("core: window %dx%d smaller than a cell", c.WindowW, c.WindowH)
	}
	if c.WindowW%c.HOG.CellSize != 0 || c.WindowH%c.HOG.CellSize != 0 {
		return fmt.Errorf("core: window %dx%d not a whole number of %d-px cells",
			c.WindowW, c.WindowH, c.HOG.CellSize)
	}
	if c.ScaleStep <= 1 {
		return fmt.Errorf("core: scale step %g must exceed 1", c.ScaleStep)
	}
	return nil
}

// DescriptorLen returns the feature-vector length a model must have for
// this configuration.
func (c Config) DescriptorLen() int { return c.HOG.DescriptorLen(c.WindowW, c.WindowH) }

// windowBlocks returns the window size in blocks.
func (c Config) windowBlocks() (bx, by int) {
	cx, cy := c.HOG.WindowCells(c.WindowW, c.WindowH)
	return c.HOG.WindowBlocks(cx, cy)
}

// Detector is a trained multi-scale pedestrian detector.
type Detector struct {
	cfg   Config
	model *svm.Model
}

// NewDetector validates the configuration against the model dimensions.
func NewDetector(model *svm.Model, cfg Config) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if model == nil {
		return nil, fmt.Errorf("core: nil model")
	}
	if want := cfg.DescriptorLen(); len(model.W) != want {
		return nil, fmt.Errorf("core: model has %d weights, config needs %d", len(model.W), want)
	}
	return &Detector{cfg: cfg, model: model}, nil
}

// Config returns the detector's configuration.
func (d *Detector) Config() Config { return d.cfg }

// Model returns the detector's SVM model.
func (d *Detector) Model() *svm.Model { return d.model }

// Detect runs multi-scale detection on the frame and returns the surviving
// detections (after thresholding and NMS) in frame pixel coordinates,
// highest score first.
func (d *Detector) Detect(frame *imgproc.Gray) ([]eval.Detection, error) {
	raw, err := d.DetectRaw(frame)
	if err != nil {
		return nil, err
	}
	if d.cfg.NMSOverlap > 0 {
		raw = NMS(raw, d.cfg.NMSOverlap)
	}
	return raw, nil
}

// DetectRaw runs multi-scale detection without non-maximum suppression.
func (d *Detector) DetectRaw(frame *imgproc.Gray) ([]eval.Detection, error) {
	switch d.cfg.Mode {
	case ImagePyramid:
		return d.detectImagePyramid(frame)
	case FeaturePyramid, FeaturePyramidChained, FeaturePyramidFixed:
		return d.detectFeaturePyramid(frame)
	}
	return nil, fmt.Errorf("core: unknown pyramid mode %v", d.cfg.Mode)
}

// scanLevel slides the detection window over one feature map, appending
// scored detections. scale maps level pixel coordinates back to the frame.
func (d *Detector) scanLevel(fm *hog.FeatureMap, scale float64, out []eval.Detection) []eval.Detection {
	wbx, wby := d.cfg.windowBlocks()
	if fm.BlocksX < wbx || fm.BlocksY < wby {
		return out
	}
	buf := make([]float64, wbx*wby*fm.BlockLen)
	cell := d.cfg.HOG.CellSize
	for by := 0; by+wby <= fm.BlocksY; by++ {
		for bx := 0; bx+wbx <= fm.BlocksX; bx++ {
			if !fm.WindowInto(buf, bx, by, wbx, wby) {
				continue
			}
			score := d.model.Score(buf)
			if score <= d.cfg.Threshold {
				continue
			}
			// Window anchor in level pixels, then back to frame pixels.
			box := geom.XYWH(bx*cell, by*cell, d.cfg.WindowW, d.cfg.WindowH).Scale(scale)
			out = append(out, eval.Detection{Box: box, Score: score})
		}
	}
	return out
}

// maxLevels returns the level cap handed to the pyramid builders.
func (d *Detector) maxLevels() int {
	if d.cfg.MaxScales > 0 {
		return d.cfg.MaxScales
	}
	return 0 // unlimited, bounded by window fit
}

func (d *Detector) detectImagePyramid(frame *imgproc.Gray) ([]eval.Detection, error) {
	levels := imgproc.Pyramid(frame, d.cfg.ScaleStep, d.cfg.WindowW, d.cfg.WindowH,
		d.maxLevels(), d.cfg.Interp)
	if len(levels) == 0 {
		return nil, fmt.Errorf("core: frame %dx%d smaller than detection window", frame.W, frame.H)
	}
	var out []eval.Detection
	for i, img := range levels {
		fm, err := hog.Compute(img, d.cfg.HOG)
		if err != nil {
			return nil, fmt.Errorf("core: level %d: %w", i, err)
		}
		// The exact scale of this level (sizes are rounded per level).
		sx := float64(frame.W) / float64(img.W)
		out = d.scanLevel(fm, sx, out)
	}
	sortByScore(out)
	return out, nil
}

func (d *Detector) detectFeaturePyramid(frame *imgproc.Gray) ([]eval.Detection, error) {
	base, err := hog.Compute(frame, d.cfg.HOG)
	if err != nil {
		return nil, err
	}
	wbx, wby := d.cfg.windowBlocks()
	var levels []featpyr.Level
	switch d.cfg.Mode {
	case FeaturePyramid:
		p, err := featpyr.Build(base, d.cfg.ScaleStep, wbx, wby, d.maxLevels(), d.cfg.Scale)
		if err != nil {
			return nil, err
		}
		levels = p.Levels
	case FeaturePyramidChained:
		p, err := featpyr.BuildChained(base, d.cfg.ScaleStep, wbx, wby, d.maxLevels(), d.cfg.Scale)
		if err != nil {
			return nil, err
		}
		levels = p.Levels
	case FeaturePyramidFixed:
		scaler := d.cfg.Fixed
		if scaler == nil {
			scaler = featpyr.NewFixedScaler()
		}
		if base.BlocksX < wbx || base.BlocksY < wby {
			return nil, fmt.Errorf("core: frame %dx%d smaller than detection window", frame.W, frame.H)
		}
		levels = []featpyr.Level{{Scale: 1, Map: base}}
		prev := base
		for i := 1; d.cfg.MaxScales == 0 || i < d.cfg.MaxScales; i++ {
			m, _, err := scaler.ScaleMapBy(prev, d.cfg.ScaleStep)
			if err != nil {
				break
			}
			if m.BlocksX < wbx || m.BlocksY < wby {
				break
			}
			levels = append(levels, featpyr.Level{
				Scale: levels[i-1].Scale * d.cfg.ScaleStep,
				Map:   m,
			})
			prev = m
		}
	}
	var out []eval.Detection
	for _, l := range levels {
		// Effective scale of this level from the block-grid ratio (grids
		// are rounded per level, like image pyramid sizes).
		sx := float64(base.BlocksX) / float64(l.Map.BlocksX)
		out = d.scanLevel(l.Map, sx, out)
	}
	sortByScore(out)
	return out, nil
}
