// Package core implements the paper's primary contribution as a library:
// multi-scale sliding-window pedestrian detection with HOG features and a
// linear SVM, supporting both the conventional image-pyramid method and the
// proposed HOG-feature-pyramid method (Section 4), plus the two
// single-window classification scenarios of Figure 3 used by the Table 1 /
// Figure 4 analysis.
package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/eval"
	"repro/internal/featpyr"
	"repro/internal/geom"
	"repro/internal/hog"
	"repro/internal/imgproc"
	"repro/internal/obs"
	"repro/internal/svm"
)

// PyramidMode selects how the detector covers scales.
type PyramidMode int

const (
	// ImagePyramid is the conventional method: the frame is resized per
	// scale and HOG features are recomputed at every level.
	ImagePyramid PyramidMode = iota
	// FeaturePyramid is the paper's method: HOG features are extracted
	// once at native scale and the normalized feature map is down-sampled
	// per level (each level interpolated directly from the base map).
	FeaturePyramid
	// FeaturePyramidChained down-samples each level from the previous one,
	// matching the hardware's cascaded scaler modules (Figure 6).
	FeaturePyramidChained
	// FeaturePyramidFixed is FeaturePyramidChained computed with the
	// bit-accurate shift-and-add fixed-point scaler.
	FeaturePyramidFixed
)

// String implements fmt.Stringer.
func (m PyramidMode) String() string {
	switch m {
	case ImagePyramid:
		return "image-pyramid"
	case FeaturePyramid:
		return "feature-pyramid"
	case FeaturePyramidChained:
		return "feature-pyramid-chained"
	case FeaturePyramidFixed:
		return "feature-pyramid-fixed"
	}
	return fmt.Sprintf("PyramidMode(%d)", int(m))
}

// Config holds the detector parameters. Use DefaultConfig as a baseline.
type Config struct {
	HOG     hog.Config
	WindowW int // detection window width in pixels (64)
	WindowH int // detection window height in pixels (128)
	// ScaleStep is the pyramid ratio between adjacent scales (1.1).
	ScaleStep float64
	// MaxScales caps the number of pyramid levels; 0 means as many as fit.
	// The paper's hardware uses 2 (memory-limited, Section 5).
	MaxScales int
	// Mode selects image- versus feature-pyramid detection.
	Mode PyramidMode
	// Threshold is the SVM decision threshold: windows scoring above it
	// are detections.
	Threshold float64
	// NMSOverlap is the IoU above which overlapping detections are
	// suppressed; <= 0 disables NMS.
	NMSOverlap float64
	// Interp is the resampling kernel for the image pyramid.
	Interp imgproc.Interp
	// Scale configures the float feature scaler.
	Scale featpyr.ScaleConfig
	// Fixed configures the fixed-point scaler (FeaturePyramidFixed); nil
	// uses featpyr.NewFixedScaler defaults.
	Fixed *featpyr.FixedScaler
	// Cascade selects staged early-rejection window scoring (see
	// CascadeMode). CascadeExact is pure optimization — detections stay
	// bit-identical to CascadeOff at every worker count; CascadeCalibrated
	// trades a measured miss bound for more pruning and needs a calibrated
	// model. Off by default.
	Cascade CascadeMode
	// Workers bounds the goroutines used on the detection hot path: pyramid
	// levels are built and scanned concurrently, each level sharded across
	// window rows. 0 means GOMAXPROCS; 1 scans serially. Window scores do
	// not depend on sharding and shard results are merged in raster order,
	// so every worker count produces identical detections. This is the
	// software analogue of the paper's eight parallel MACBAR classifiers
	// scoring window columns side by side.
	Workers int
	// SkipFinest drops the N finest (most expensive) pyramid levels from
	// scanning, keeping at least the coarsest level. The streaming runtime
	// (internal/rt) uses it to shed load under deadline pressure, mirroring
	// the paper's memory-limited 2-scale hardware operating point: the
	// finest levels carry by far the most windows, so dropping them first
	// buys the largest latency reduction at the smallest coverage loss
	// (far-field detection range goes first). Ignored by DetectOctave.
	SkipFinest int
	// Arena, if non-nil, supplies the pooled per-frame HOG scratch for the
	// detect path; detectors sharing an Arena share its buffers (the
	// streaming runtime hands one arena to every degradation rung). nil
	// gives the detector a private arena in NewDetector.
	Arena *Arena
	// Regions, if non-nil, is the mutable region-of-interest holder for
	// temporal scan scheduling (internal/roi): while the set is active,
	// DetectRaw and ScoreMaps scan only the windows whose center falls in
	// one of its frame-pixel rectangles, mapped per level into
	// window-anchor spans; while inactive, scans are dense. Like Arena it
	// is shared across detectors (every rung of a streaming pipeline reads
	// the same set) and owns the reusable span scratch that keeps the
	// restricted path allocation-free. It serves one in-flight frame at a
	// time — mutate it only between frames. Restriction composes with
	// Workers sharding and both cascade modes and preserves raster-order
	// determinism; DetectOctave ignores it.
	Regions *RegionSet
	// Metrics, if non-nil, receives per-stage latency observations from the
	// detect path: HOG cell binning and normalization (via the arena
	// scratch), pyramid construction, window scanning, and NMS, plus
	// per-level resample timings. Recording is lock-free and
	// allocation-free, so the alloc budgets hold with metrics enabled; nil
	// (the default) leaves the hot path with a single predicted-not-taken
	// branch per stage. A DetectRecorder accumulates one frame at a time:
	// detectors running frames concurrently need distinct recorders, which
	// may share one *obs.Metrics registry (its histograms are atomic).
	Metrics *obs.DetectRecorder
	// LevelProbe, if non-nil, is invoked once per scanned pyramid level
	// (with its absolute pyramid index, assigned before any skipping) at
	// the start of every scan. A non-nil return aborts the frame with that
	// error. It exists for instrumentation and fault injection
	// (internal/rt/faultinject models per-level stalls and poison scales
	// through it); levels shed via SkipFinest are not probed, which is what
	// lets the runtime degrade around an injected per-level fault.
	LevelProbe func(ctx context.Context, level int) error
}

// DefaultConfig returns the paper's detector configuration with the
// feature-pyramid mode and unlimited scales.
func DefaultConfig() Config {
	return Config{
		HOG:        hog.DefaultConfig(),
		WindowW:    64,
		WindowH:    128,
		ScaleStep:  1.1,
		Mode:       FeaturePyramid,
		Threshold:  0,
		NMSOverlap: 0.3,
		Interp:     imgproc.Bilinear,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.HOG.Validate(); err != nil {
		return err
	}
	if c.WindowW < c.HOG.CellSize || c.WindowH < c.HOG.CellSize {
		return fmt.Errorf("core: window %dx%d smaller than a cell", c.WindowW, c.WindowH)
	}
	if c.WindowW%c.HOG.CellSize != 0 || c.WindowH%c.HOG.CellSize != 0 {
		return fmt.Errorf("core: window %dx%d not a whole number of %d-px cells",
			c.WindowW, c.WindowH, c.HOG.CellSize)
	}
	if c.ScaleStep <= 1 {
		return fmt.Errorf("core: scale step %g must exceed 1", c.ScaleStep)
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: negative worker count %d", c.Workers)
	}
	if c.SkipFinest < 0 {
		return fmt.Errorf("core: negative skip-finest count %d", c.SkipFinest)
	}
	return nil
}

// workers resolves the configured worker count (0 means GOMAXPROCS).
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// DescriptorLen returns the feature-vector length a model must have for
// this configuration.
func (c Config) DescriptorLen() int { return c.HOG.DescriptorLen(c.WindowW, c.WindowH) }

// windowBlocks returns the window size in blocks.
func (c Config) windowBlocks() (bx, by int) {
	cx, cy := c.HOG.WindowCells(c.WindowW, c.WindowH)
	return c.HOG.WindowBlocks(cx, cy)
}

// Detector is a trained multi-scale pedestrian detector.
type Detector struct {
	cfg   Config
	model *svm.Model
	arena *Arena
	// plan is the cascade stage schedule (nil when Cascade is off), built
	// once in NewDetector and shared read-only by every scan worker.
	plan *hog.StagePlan
}

// NewDetector validates the configuration against the model dimensions.
func NewDetector(model *svm.Model, cfg Config) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if model == nil {
		return nil, fmt.Errorf("core: nil model")
	}
	if want := cfg.DescriptorLen(); len(model.W) != want {
		return nil, fmt.Errorf("core: model has %d weights, config needs %d", len(model.W), want)
	}
	arena := cfg.Arena
	if arena == nil {
		arena = NewArena()
	}
	// Route per-level resample timings of the float scalers into the
	// registry's pyramid-level histogram unless the caller installed an
	// explicit timer (the fixed scaler is timed directly in buildLevels).
	if cfg.Scale.LevelTimer == nil {
		cfg.Scale.LevelTimer = cfg.Metrics.LevelTimer()
	}
	plan, err := buildStagePlan(model, cfg)
	if err != nil {
		return nil, err
	}
	return &Detector{cfg: cfg, model: model, arena: arena, plan: plan}, nil
}

// Config returns the detector's configuration.
func (d *Detector) Config() Config { return d.cfg }

// Model returns the detector's SVM model.
func (d *Detector) Model() *svm.Model { return d.model }

// Detect runs multi-scale detection on the frame and returns the surviving
// detections (after thresholding and NMS) in frame pixel coordinates,
// highest score first.
func (d *Detector) Detect(frame *imgproc.Gray) ([]eval.Detection, error) {
	return d.DetectCtx(context.Background(), frame)
}

// DetectCtx is Detect with cooperative cancellation: pyramid construction
// and window scanning observe ctx and return ctx.Err() promptly (within one
// window row / one pyramid level) once it is cancelled or its deadline
// passes. The streaming runtime (internal/rt) uses it to enforce the
// per-frame budget of das.FrameBudget.
func (d *Detector) DetectCtx(ctx context.Context, frame *imgproc.Gray) ([]eval.Detection, error) {
	raw, err := d.DetectRawCtx(ctx, frame)
	if err != nil {
		return nil, err
	}
	if d.cfg.NMSOverlap > 0 {
		t0 := time.Now()
		raw = NMS(raw, d.cfg.NMSOverlap)
		d.cfg.Metrics.Observe(obs.StageNMS, time.Since(t0))
	}
	return raw, nil
}

// DetectRaw runs multi-scale detection without non-maximum suppression.
func (d *Detector) DetectRaw(frame *imgproc.Gray) ([]eval.Detection, error) {
	return d.DetectRawCtx(context.Background(), frame)
}

// DetectRawCtx is DetectRaw with cooperative cancellation (see DetectCtx).
func (d *Detector) DetectRawCtx(ctx context.Context, frame *imgproc.Gray) ([]eval.Detection, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	d.cfg.Metrics.BeginFrame()
	levels, release, err := d.buildLevels(ctx, frame)
	if err != nil {
		return nil, err
	}
	defer release()
	d.applyRegions(levels)
	t0 := time.Now()
	out, err := d.scanLevels(ctx, levels)
	if err != nil {
		return nil, err
	}
	d.cfg.Metrics.Observe(obs.StageScan, time.Since(t0))
	sortByScore(out)
	return out, nil
}

// pyrLevel is one scale of either pyramid flavour. sx and sy map level pixel
// coordinates back to frame pixels; they differ in general because level
// grids are rounded to integers independently per axis. index is the
// absolute pyramid level (0 = finest), stable under SkipFinest so that
// LevelProbe and the degradation ladder agree on which scale is which.
type pyrLevel struct {
	fm     *hog.FeatureMap
	sx, sy float64
	index  int
	// normCap bounds the L2 norm of any block vector of this level's map
	// (levelNormCap); 0 means no bound is available and the exact cascade
	// scans the level dense. Zero-valued pyrLevels (octave scans) therefore
	// default to the safe dense path.
	normCap float64
	// spans restricts the scan to these anchor rectangles (applyRegions):
	// nil scans the whole level dense, a non-nil empty slice skips the
	// level entirely (the active region set touches none of its anchors).
	spans []anchorSpan
}

// maxLevels returns the level cap handed to the pyramid builders.
func (d *Detector) maxLevels() int {
	if d.cfg.MaxScales > 0 {
		return d.cfg.MaxScales
	}
	return 0 // unlimited, bounded by window fit
}

// levelSize is one planned image-pyramid level: its absolute index and the
// rounded pixel dimensions (the same rounding as imgproc.Pyramid).
type levelSize struct {
	index int
	w, h  int
}

// pyramidSizes enumerates the image-pyramid level geometries for the frame:
// level i is the frame divided by ScaleStep^i, stopping when the detection
// window no longer fits or after maxLevels levels.
func (d *Detector) pyramidSizes(frameW, frameH int) []levelSize {
	maxL := d.maxLevels()
	if maxL <= 0 {
		maxL = math.MaxInt32
	}
	var out []levelSize
	for i := 0; i < maxL; i++ {
		f := math.Pow(d.cfg.ScaleStep, float64(i))
		w := int(math.Round(float64(frameW) / f))
		h := int(math.Round(float64(frameH) / f))
		if w < d.cfg.WindowW || h < d.cfg.WindowH {
			break
		}
		out = append(out, levelSize{index: i, w: w, h: h})
	}
	return out
}

// skipFinest resolves the effective number of finest levels to shed for a
// pyramid of n levels: the configured count, clamped so that at least the
// coarsest level survives.
func (d *Detector) skipFinest(n int) int {
	skip := d.cfg.SkipFinest
	if skip >= n {
		skip = n - 1
	}
	if skip < 0 {
		skip = 0
	}
	return skip
}

// buildLevels constructs the pyramid of the configured mode and returns its
// levels with their per-axis frame-mapping factors, plus a release function
// that recycles pooled feature storage once scanning is done. Both DetectRaw
// and ScoreMaps go through here, so every mode scores the same levels in
// both entry points. Construction observes ctx: extraction stops within one
// pyramid level of cancellation.
func (d *Detector) buildLevels(ctx context.Context, frame *imgproc.Gray) ([]pyrLevel, func(), error) {
	noop := func() {}
	wbx, wby := d.cfg.windowBlocks()
	switch d.cfg.Mode {
	case ImagePyramid:
		sizes := d.pyramidSizes(frame.W, frame.H)
		if len(sizes) == 0 {
			return nil, noop, fmt.Errorf("core: frame %dx%d smaller than detection window", frame.W, frame.H)
		}
		// Shed levels before doing any work: in image-pyramid mode both the
		// resize and the HOG extraction of a skipped level are saved.
		sizes = sizes[d.skipFinest(len(sizes)):]
		// Resize + HOG extraction dominates image-pyramid cost; run the
		// levels through a bounded worker pool. Each worker recovers its own
		// panics so a poison frame (e.g. a truncated pixel buffer) surfaces
		// as an error from DetectRawCtx instead of killing the process.
		//
		// The whole per-level resize+extract fan-out books under
		// StagePyramid: the parallel workers compute HOG through pooled
		// scratches that cannot share the frame's single-threaded stage
		// recorder, so image-pyramid mode does not split out hog_cells /
		// hog_norm the way the feature modes do.
		t0 := time.Now()
		levels := make([]pyrLevel, len(sizes))
		errs := make([]error, len(sizes))
		sem := make(chan struct{}, d.cfg.workers())
		var wg sync.WaitGroup
		for i, s := range sizes {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, s levelSize) {
				defer wg.Done()
				defer func() { <-sem }()
				defer func() {
					if r := recover(); r != nil {
						errs[i] = fmt.Errorf("core: level %d: panic during extraction: %v", s.index, r)
					}
				}()
				if err := ctx.Err(); err != nil {
					errs[i] = err
					return
				}
				img := imgproc.Resize(frame, s.w, s.h, d.cfg.Interp)
				fm, err := hog.Compute(img, d.cfg.HOG)
				if err != nil {
					errs[i] = fmt.Errorf("core: level %d: %w", s.index, err)
					return
				}
				// The exact per-axis scale of this level (sizes are
				// rounded per level, separately in X and Y).
				levels[i] = pyrLevel{
					fm:      fm,
					sx:      float64(frame.W) / float64(img.W),
					sy:      float64(frame.H) / float64(img.H),
					index:   s.index,
					normCap: d.levelNormCap(s.index),
				}
			}(i, s)
		}
		wg.Wait()
		if err := firstError(errs); err != nil {
			return nil, noop, err
		}
		d.cfg.Metrics.Observe(obs.StagePyramid, time.Since(t0))
		return levels, noop, nil

	case FeaturePyramid, FeaturePyramidChained, FeaturePyramidFixed:
		// The base extraction runs through the arena's pooled scratch: the
		// fused front end writes the luminance plane, cell grid, and base
		// feature map into reusable buffers instead of allocating them per
		// frame. The scratch-owned base map must never reach
		// featpyr.ReleaseMap (its slab belongs to the arena, not the level
		// pool); the float pyramids clone it into pooled level 0, so their
		// scratch checks back in right after construction, while the fixed
		// pyramid scans it directly as level 0 and holds the scratch until
		// release.
		s := d.arena.get()
		s.Metrics = d.cfg.Metrics // cells/normalize stage timings; cleared on put
		base, err := hog.ComputeInto(frame, d.cfg.HOG, s, d.cfg.workers())
		if err != nil {
			d.arena.put(s)
			return nil, noop, err
		}
		if err := ctx.Err(); err != nil {
			d.arena.put(s)
			return nil, noop, err
		}
		// The arena may hand the scratch to another frame once it is
		// checked in; snapshot the base grid size for the scale ratios
		// below instead of re-reading the (then recycled) map.
		baseBX, baseBY := base.BlocksX, base.BlocksY
		pt0 := time.Now()
		var levels []featpyr.Level
		release := noop
		switch d.cfg.Mode {
		case FeaturePyramid:
			p, err := featpyr.BuildCtx(ctx, base, d.cfg.ScaleStep, wbx, wby, d.maxLevels(), d.cfg.Scale)
			d.arena.put(s)
			if err != nil {
				return nil, noop, err
			}
			levels, release = p.Levels, p.Release
		case FeaturePyramidChained:
			p, err := featpyr.BuildChainedCtx(ctx, base, d.cfg.ScaleStep, wbx, wby, d.maxLevels(), d.cfg.Scale)
			d.arena.put(s)
			if err != nil {
				return nil, noop, err
			}
			levels, release = p.Levels, p.Release
		case FeaturePyramidFixed:
			if base.BlocksX < wbx || base.BlocksY < wby {
				d.arena.put(s)
				return nil, noop, fmt.Errorf("core: frame %dx%d smaller than detection window", frame.W, frame.H)
			}
			scaler := d.cfg.Fixed
			if scaler == nil {
				scaler = featpyr.NewFixedScaler()
			}
			levels = []featpyr.Level{{Scale: 1, Map: base}}
			prev := base
			for i := 1; d.cfg.MaxScales == 0 || i < d.cfg.MaxScales; i++ {
				// Termination is decided on the target grid before scaling
				// (same rounding as ScaleMapBy): a level too small for the
				// window ends the pyramid, while a scaler failure on a
				// viable level is a real error and is returned, not
				// swallowed as silent truncation.
				outBX := int(math.Round(float64(prev.BlocksX) / d.cfg.ScaleStep))
				outBY := int(math.Round(float64(prev.BlocksY) / d.cfg.ScaleStep))
				if outBX < wbx || outBY < wby {
					break
				}
				if err := ctx.Err(); err != nil {
					for j := 1; j < len(levels); j++ {
						featpyr.ReleaseMap(levels[j].Map)
					}
					d.arena.put(s)
					return nil, noop, err
				}
				lt0 := time.Now()
				m, _, err := scaler.ScaleMap(prev, outBX, outBY)
				if err != nil {
					for j := 1; j < len(levels); j++ {
						featpyr.ReleaseMap(levels[j].Map)
					}
					d.arena.put(s)
					return nil, noop, fmt.Errorf("core: fixed scaler level %d: %w", i, err)
				}
				d.cfg.Metrics.ObserveLevel(time.Since(lt0))
				levels = append(levels, featpyr.Level{
					Scale: levels[i-1].Scale * d.cfg.ScaleStep,
					Map:   m,
				})
				prev = m
			}
			lv := levels
			release = func() {
				// Level 0 is the scratch-owned base: it returns to the
				// arena, not the featpyr pool.
				for i := 1; i < len(lv); i++ {
					featpyr.ReleaseMap(lv[i].Map)
				}
				d.arena.put(s)
			}
		}
		d.cfg.Metrics.Observe(obs.StagePyramid, time.Since(pt0))
		// Feature pyramids derive every coarser level from the base map, so
		// shedding only skips the scan (which dominates); skipped level maps
		// go straight back to the scratch pool — except a scratch-owned base,
		// whose storage the release function returns to the arena instead.
		// Absolute indices are kept so LevelProbe still addresses the
		// original scale ladder.
		skip := d.skipFinest(len(levels))
		out := make([]pyrLevel, 0, len(levels)-skip)
		for i, l := range levels {
			if i < skip {
				if l.Map != base {
					featpyr.ReleaseMap(l.Map)
				}
				continue
			}
			// Effective per-axis scale of this level from the block-grid
			// ratio (grids are rounded per level, like image pyramid
			// sizes, and independently per axis).
			out = append(out, pyrLevel{
				fm:      l.Map,
				sx:      float64(baseBX) / float64(l.Map.BlocksX),
				sy:      float64(baseBY) / float64(l.Map.BlocksY),
				index:   i,
				normCap: d.levelNormCap(i),
			})
		}
		return out, release, nil
	}
	return nil, noop, fmt.Errorf("core: unknown pyramid mode %v", d.cfg.Mode)
}

// firstError returns the most informative error of a per-level slice: the
// first non-cancellation error if any (a real failure should not be masked
// by the cancellations it triggered in sibling workers), else the first
// error.
func firstError(errs []error) error {
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if err != context.Canceled && err != context.DeadlineExceeded {
			return err
		}
		if first == nil {
			first = err
		}
	}
	return first
}

// scanLevelRows slides the detection window over block rows [row0, row1) of
// one pyramid level, appending scored detections to out. Windows are scored
// zero-copy against the feature map — nothing is allocated per window.
// l.sx and l.sy map level pixel coordinates back to frame pixels per axis.
// Cancellation is checked once per window row, so an expired ctx stops a
// scan within one row; the caller discards partial output on error, keeping
// results deterministic.
//
// With a cascade plan the staged kernel replaces the dense one. Exact mode
// needs the level's block-norm bound; a level without one (l.normCap == 0)
// scans dense, so octave scans and lambda-scaled float pyramids stay
// correct without special cases. The staged path keeps the zero-allocation
// property: the per-row dot scratch is a stack array (windows are at most
// maxStackRows block rows tall in every shipped geometry; taller ones fall
// back to one allocation per shard, not per window) and cascade counters
// accumulate in a stack tally folded into the shared registry once per
// call.
//
// A region-restricted level (l.spans non-nil) scans only its anchor spans.
// Both kernels iterate a span slice; the dense case is the degenerate
// single full-width span, built on the stack, so the unrestricted path
// pays one extra bounds test per row and no allocation. Spans are
// non-overlapping and bx0-sorted, so restricted output stays in raster
// order — the exact subsequence a dense scan would emit for those anchors.
func (d *Detector) scanLevelRows(ctx context.Context, l pyrLevel, row0, row1 int, out []eval.Detection) ([]eval.Detection, error) {
	wbx, wby := d.cfg.windowBlocks()
	cell := d.cfg.HOG.CellSize
	w := d.model.W
	fm, sx, sy := l.fm, l.sx, l.sy
	fullSpan := [1]anchorSpan{{bx0: 0, bx1: fm.BlocksX - wbx + 1, by0: 0, by1: fm.BlocksY - wby + 1}}
	spans := l.spans
	if spans == nil {
		spans = fullSpan[:]
	} else if len(spans) == 0 {
		return out, nil // active region set touches no anchor of this level
	}
	plan := d.plan
	if plan != nil && d.cfg.Cascade == CascadeExact && l.normCap <= 0 {
		plan = nil // no norm bound: exact pruning impossible, scan dense
	}
	if plan == nil {
		for by := row0; by < row1; by++ {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			for si := range spans {
				sp := spans[si]
				if by < sp.by0 || by >= sp.by1 {
					continue
				}
				for bx := sp.bx0; bx < sp.bx1; bx++ {
					score, ok := fm.ScoreWindow(w, bx, by, wbx, wby)
					if !ok {
						continue
					}
					score += d.model.B
					if score <= d.cfg.Threshold {
						continue
					}
					// Window anchor in level pixels, then back to frame pixels.
					box := geom.XYWH(bx*cell, by*cell, d.cfg.WindowW, d.cfg.WindowH).ScaleXY(sx, sy)
					out = append(out, eval.Detection{Box: box, Score: score})
				}
			}
		}
		return out, nil
	}

	// Staged path. The kernel tests the raw (bias-free) score against the
	// bias-adjusted threshold: score+B > Threshold <=> score > Threshold-B.
	thr := d.cfg.Threshold - d.model.B
	const maxStackRows = 64
	var rowBuf [maxStackRows]float64
	rowDots := rowBuf[:]
	if wby > maxStackRows {
		rowDots = make([]float64, wby)
	}
	var tally cascadeTally
	reg := d.cfg.Metrics.Metrics()
	for by := row0; by < row1; by++ {
		if err := ctx.Err(); err != nil {
			tally.fold(reg, wbx)
			return out, err
		}
		for si := range spans {
			sp := spans[si]
			if by < sp.by0 || by >= sp.by1 {
				continue
			}
			for bx := sp.bx0; bx < sp.bx1; bx++ {
				score, rowsEval, accepted, ok := fm.ScoreWindowStaged(w, bx, by, wbx, wby, plan, thr, l.normCap, rowDots)
				if !ok {
					continue
				}
				tally.windows++
				tally.rows += uint64(rowsEval)
				if !accepted {
					tally.reject(rowsEval)
					continue
				}
				tally.accepted++
				score += d.model.B
				if score <= d.cfg.Threshold {
					continue
				}
				box := geom.XYWH(bx*cell, by*cell, d.cfg.WindowW, d.cfg.WindowH).ScaleXY(sx, sy)
				out = append(out, eval.Detection{Box: box, Score: score})
			}
		}
	}
	tally.fold(reg, wbx)
	return out, nil
}

// rowShard is one unit of scan work: a contiguous run of window rows of one
// level.
type rowShard struct {
	level      int
	row0, row1 int
}

// shardLevels splits each level's row count into up to `workers` contiguous
// shards, in (level, row) order. Levels with fewer rows than workers yield
// fewer shards; a zero row count yields none.
func shardLevels(rows []int, workers int) []rowShard {
	var shards []rowShard
	for level, n := range rows {
		if n < 1 {
			continue
		}
		step := (n + workers - 1) / workers
		for r := 0; r < n; r += step {
			r1 := r + step
			if r1 > n {
				r1 = n
			}
			shards = append(shards, rowShard{level: level, row0: r, row1: r1})
		}
	}
	return shards
}

// runShards executes fn over the shards on a pool of `workers` goroutines.
// fn must be safe for concurrent calls on distinct shard indices and is
// expected to observe ctx itself for sub-shard cancellation granularity.
// Each worker goroutine recovers its own panics — a poison shard (corrupt
// feature data) is reported as an error instead of crashing the process —
// and cancellation stops job dispatch between shards. On a non-nil return
// the shard outputs are incomplete and must be discarded.
func runShards(ctx context.Context, shards []rowShard, workers int, fn func(i int, s rowShard) error) error {
	if workers > len(shards) {
		workers = len(shards)
	}
	if workers <= 1 {
		for i, s := range shards {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i, s); err != nil {
				return err
			}
		}
		return nil
	}
	jobs := make(chan int)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[w] = fmt.Errorf("core: scan worker panic: %v", r)
					// Keep draining so the dispatcher never blocks on a
					// dead worker pool.
					for range jobs {
					}
				}
			}()
			for i := range jobs {
				if errs[w] != nil || ctx.Err() != nil {
					continue // drain without scanning
				}
				if err := fn(i, shards[i]); err != nil {
					errs[w] = err
				}
			}
		}(w)
	}
	for i := range shards {
		select {
		case jobs <- i:
		case <-ctx.Done():
			close(jobs)
			wg.Wait()
			return ctx.Err()
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	return firstError(errs)
}

// scanRows returns the number of window rows of each level (zero when the
// window does not fit).
func (d *Detector) scanRows(levels []pyrLevel) []int {
	wbx, wby := d.cfg.windowBlocks()
	rows := make([]int, len(levels))
	for i, l := range levels {
		if l.fm.BlocksX >= wbx && l.fm.BlocksY >= wby {
			rows[i] = l.fm.BlocksY - wby + 1
		}
	}
	return rows
}

// probeLevels runs the configured LevelProbe over the levels about to be
// scanned, in finest-to-coarsest order. A probe error aborts the frame.
func (d *Detector) probeLevels(ctx context.Context, levels []pyrLevel) error {
	probe := d.cfg.LevelProbe
	if probe == nil {
		return nil
	}
	for _, l := range levels {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := probe(ctx, l.index); err != nil {
			return fmt.Errorf("core: level %d probe: %w", l.index, err)
		}
	}
	return nil
}

// scanLevels scores every window of every level, sharding levels across
// window rows over the worker pool. Shard outputs are concatenated in
// (level, row) order, so the result is exactly the raster-order slice a
// serial scan produces — detections are byte-identical for every worker
// count. On cancellation or a worker failure partial output is discarded
// and the error returned.
func (d *Detector) scanLevels(ctx context.Context, levels []pyrLevel) ([]eval.Detection, error) {
	if err := d.probeLevels(ctx, levels); err != nil {
		return nil, err
	}
	rows := d.scanRows(levels)
	workers := d.cfg.workers()
	if workers <= 1 {
		var out []eval.Detection
		var err error
		for i, l := range levels {
			out, err = d.scanLevelRows(ctx, l, 0, rows[i], out)
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	shards := shardLevels(rows, workers)
	outs := make([][]eval.Detection, len(shards))
	err := runShards(ctx, shards, workers, func(i int, s rowShard) error {
		var err error
		outs[i], err = d.scanLevelRows(ctx, levels[s.level], s.row0, s.row1, nil)
		return err
	})
	if err != nil {
		return nil, err
	}
	var out []eval.Detection
	for _, o := range outs {
		out = append(out, o...)
	}
	return out, nil
}
