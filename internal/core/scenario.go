package core

import (
	"fmt"

	"repro/internal/featpyr"
	"repro/internal/hog"
	"repro/internal/imgproc"
	"repro/internal/svm"
)

// This file implements the two single-window test configurations of the
// paper's Figure 3, used to produce Table 1 and Figure 4:
//
//	(a) conventional: resize the window image to the 64x128 training size,
//	    extract HOG, classify;
//	(b) proposed: extract HOG at the window's native size, down-sample the
//	    normalized feature map to the training block grid, classify.

// ClassifyImageScaled scores a window image of any size with scenario (a):
// image resizing before feature extraction.
func ClassifyImageScaled(model *svm.Model, img *imgproc.Gray, cfg Config) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	resized := img
	if img.W != cfg.WindowW || img.H != cfg.WindowH {
		resized = imgproc.Resize(img, cfg.WindowW, cfg.WindowH, cfg.Interp)
	}
	d, err := hog.Descriptor(resized, cfg.HOG)
	if err != nil {
		return 0, err
	}
	if len(d) != len(model.W) {
		return 0, fmt.Errorf("core: descriptor length %d != model %d", len(d), len(model.W))
	}
	return model.Score(d), nil
}

// ClassifyFeatureScaled scores a window image of any size with scenario
// (b): HOG extraction at native size, then feature-map down-sampling to the
// training window's block grid (the paper's proposed method).
func ClassifyFeatureScaled(model *svm.Model, img *imgproc.Gray, cfg Config) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	fm, err := hog.Compute(img, cfg.HOG)
	if err != nil {
		return 0, err
	}
	wbx, wby := cfg.windowBlocks()
	scaled := fm
	if img.W != cfg.WindowW || img.H != cfg.WindowH {
		// Resample using the true content ratio (window pixels over
		// training-window pixels), not the integer cell-grid ratio: a
		// 70-px-wide window has 8.75 cells of content even though only 8
		// whole cells were binned.
		rx := float64(img.W) / float64(cfg.WindowW)
		ry := float64(img.H) / float64(cfg.WindowH)
		scaled, err = featpyr.ScaleMapRatio(fm, wbx, wby, rx, ry, cfg.Scale)
		if err != nil {
			return 0, err
		}
	}
	d := scaled.Window(0, 0, wbx, wby)
	if d == nil {
		return 0, fmt.Errorf("core: window extraction failed on %dx%d block map", scaled.BlocksX, scaled.BlocksY)
	}
	if len(d) != len(model.W) {
		return 0, fmt.Errorf("core: descriptor length %d != model %d", len(d), len(model.W))
	}
	return model.Score(d), nil
}

// ClassifyFeatureScaledFixed is scenario (b) computed with the bit-accurate
// shift-and-add fixed-point scaler (the hardware datapath).
func ClassifyFeatureScaledFixed(model *svm.Model, img *imgproc.Gray, cfg Config) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	fm, err := hog.Compute(img, cfg.HOG)
	if err != nil {
		return 0, err
	}
	wbx, wby := cfg.windowBlocks()
	scaled := fm
	if img.W != cfg.WindowW || img.H != cfg.WindowH {
		scaler := cfg.Fixed
		if scaler == nil {
			scaler = featpyr.NewFixedScaler()
		}
		rx := float64(img.W) / float64(cfg.WindowW)
		ry := float64(img.H) / float64(cfg.WindowH)
		scaled, _, err = scaler.ScaleMapRatio(fm, wbx, wby, rx, ry)
		if err != nil {
			return 0, err
		}
	}
	d := scaled.Window(0, 0, wbx, wby)
	if d == nil {
		return 0, fmt.Errorf("core: window extraction failed on %dx%d block map", scaled.BlocksX, scaled.BlocksY)
	}
	return model.Score(d), nil
}
