package core

import (
	"math"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/geom"
	"repro/internal/imgproc"
	"repro/internal/svm"
)

// trainedDetector lazily trains one shared small model for all tests.
var (
	trainOnce  sync.Once
	sharedDet  *Detector
	sharedErr  error
	sharedGen  *dataset.Generator
	sharedCfg  Config
	sharedOpts TrainOptions
)

// testDetector returns the shared trained model plus a FRESH generator for
// the calling test to render scenes from. Handing out the training
// generator would leak RNG state between tests — what each test renders
// would depend on which tests ran before it, and with -shuffle=on the
// scenes (and therefore assertion outcomes) would vary with test order.
func testDetector(t *testing.T) (*Detector, *dataset.Generator) {
	t.Helper()
	trainOnce.Do(func() {
		sharedGen = dataset.New(1001)
		sharedCfg = DefaultConfig()
		sharedOpts = DefaultTrainOptions()
		set := sharedGen.NewSpecSet(150, 450)
		rendered, err := sharedGen.RenderAt(set, 1.0)
		if err != nil {
			sharedErr = err
			return
		}
		sharedDet, sharedErr = Train(rendered, sharedCfg, sharedOpts)
	})
	if sharedErr != nil {
		t.Fatal(sharedErr)
	}
	return sharedDet, dataset.New(1002)
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	c := DefaultConfig()
	c.WindowW = 63 // not a multiple of the cell size
	if err := c.Validate(); err == nil {
		t.Error("non-cell-aligned window should fail validation")
	}
	c = DefaultConfig()
	c.ScaleStep = 1.0
	if err := c.Validate(); err == nil {
		t.Error("unit scale step should fail validation")
	}
	c = DefaultConfig()
	c.WindowW = 4
	if err := c.Validate(); err == nil {
		t.Error("sub-cell window should fail validation")
	}
}

func TestDescriptorLen(t *testing.T) {
	if got := DefaultConfig().DescriptorLen(); got != 4608 {
		t.Errorf("descriptor length %d, want 4608", got)
	}
}

func TestNewDetectorChecksModel(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := NewDetector(nil, cfg); err == nil {
		t.Error("nil model should error")
	}
	short := &svm.Model{W: make([]float64, 10)}
	if _, err := NewDetector(short, cfg); err == nil {
		t.Error("wrong-dimension model should error")
	}
	ok := &svm.Model{W: make([]float64, cfg.DescriptorLen())}
	if _, err := NewDetector(ok, cfg); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
}

func TestNMS(t *testing.T) {
	dets := []eval.Detection{
		{Box: geom.XYWH(0, 0, 64, 128), Score: 1.0},
		{Box: geom.XYWH(4, 4, 64, 128), Score: 0.9},   // overlaps #0 heavily
		{Box: geom.XYWH(200, 0, 64, 128), Score: 0.8}, // separate
	}
	out := NMS(dets, 0.3)
	if len(out) != 2 {
		t.Fatalf("NMS kept %d, want 2", len(out))
	}
	if out[0].Score != 1.0 || out[1].Score != 0.8 {
		t.Errorf("NMS kept wrong detections: %+v", out)
	}
	if got := NMS(nil, 0.3); got != nil {
		t.Error("NMS(nil) should be nil")
	}
	// The input is not mutated.
	if dets[2].Score != 0.8 {
		t.Error("NMS mutated its input")
	}
}

func TestNMSKeepsAllWhenDisjoint(t *testing.T) {
	var dets []eval.Detection
	for i := 0; i < 5; i++ {
		dets = append(dets, eval.Detection{Box: geom.XYWH(i*200, 0, 64, 128), Score: float64(i)})
	}
	out := NMS(dets, 0.3)
	if len(out) != 5 {
		t.Fatalf("NMS dropped disjoint boxes: kept %d", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i].Score > out[i-1].Score {
			t.Fatal("NMS output not sorted by score")
		}
	}
}

// sceneWithPedestrian builds a frame with one pedestrian of the given pixel
// height pasted onto clutter, returning the frame and the figure's box.
func sceneWithPedestrian(g *dataset.Generator, frameW, frameH, pedH int) (*imgproc.Gray, geom.Rect) {
	spec := g.NewSpec(false)
	frame := g.Render(spec, frameW, frameH)
	// Render a pedestrian window scaled so the figure is pedH tall, then
	// paste it.
	scale := float64(pedH) / float64(dataset.WindowH)
	pw := int(float64(dataset.WindowW)*scale + 0.5)
	ph := int(float64(dataset.WindowH)*scale + 0.5)
	pspec := g.NewSpec(true)
	pspec.Pose.CenterXFrac = 0.5
	pspec.Pose.HeightFrac = 0.85
	win := g.Render(pspec, pw, ph)
	x := (frameW - pw) / 2
	y := (frameH - ph) / 2
	imgproc.Paste(frame, win, x, y, -1)
	return frame, geom.XYWH(x, y, pw, ph)
}

func TestDetectNativeScaleAllModes(t *testing.T) {
	det, g := testDetector(t)
	frame, truth := sceneWithPedestrian(g, 256, 256, 128)
	for _, mode := range []PyramidMode{ImagePyramid, FeaturePyramid, FeaturePyramidChained, FeaturePyramidFixed} {
		cfg := det.Config()
		cfg.Mode = mode
		d2, err := NewDetector(det.Model(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		dets, err := d2.Detect(frame)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if len(dets) == 0 {
			t.Errorf("%v: pedestrian not detected", mode)
			continue
		}
		best := dets[0]
		if geom.IoU(best.Box, truth) < 0.4 {
			t.Errorf("%v: best box %v far from truth %v (IoU %.2f)",
				mode, best.Box, truth, geom.IoU(best.Box, truth))
		}
	}
}

func TestDetectScaledPedestrianFeaturePyramid(t *testing.T) {
	det, g := testDetector(t)
	// A pedestrian 1.2x the window height requires the second-or-so
	// pyramid level.
	frame, truth := sceneWithPedestrian(g, 320, 320, 154)
	for _, mode := range []PyramidMode{ImagePyramid, FeaturePyramid} {
		cfg := det.Config()
		cfg.Mode = mode
		d2, err := NewDetector(det.Model(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		dets, err := d2.Detect(frame)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, dd := range dets {
			if geom.IoU(dd.Box, truth) >= 0.4 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%v: scaled pedestrian not found among %d detections", mode, len(dets))
		}
	}
}

func TestDetectTooSmallFrameErrors(t *testing.T) {
	det, _ := testDetector(t)
	tiny := imgproc.NewGray(32, 32)
	if _, err := det.Detect(tiny); err == nil {
		t.Error("frame smaller than the window should error")
	}
}

func TestScenarioClassifiersAgreeAtNativeScale(t *testing.T) {
	det, g := testDetector(t)
	img := g.Render(g.NewSpec(true), 64, 128)
	cfg := det.Config()
	a, err := ClassifyImageScaled(det.Model(), img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ClassifyFeatureScaled(det.Model(), img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("at native scale both scenarios must agree: %v vs %v", a, b)
	}
}

func TestScenarioClassifiersCorrelateAtScale(t *testing.T) {
	det, g := testDetector(t)
	cfg := det.Config()
	// Scores of the two methods on the same up-scaled windows must agree
	// in sign for the most part (that is Table 1's premise).
	agree, total := 0, 0
	specs := g.NewSpecSet(15, 15)
	set, err := g.RenderAt(specs, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	for _, img := range set.Images {
		a, err := ClassifyImageScaled(det.Model(), img, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ClassifyFeatureScaled(det.Model(), img, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if (a > 0) == (b > 0) {
			agree++
		}
		total++
	}
	if float64(agree)/float64(total) < 0.8 {
		t.Errorf("scenarios agree on only %d/%d windows at scale 1.2", agree, total)
	}
}

func TestClassifyFeatureScaledFixedClose(t *testing.T) {
	det, g := testDetector(t)
	cfg := det.Config()
	img := g.Render(g.NewSpec(true), 77, 154) // 1.2x window
	f, err := ClassifyFeatureScaled(det.Model(), img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ClassifyFeatureScaledFixed(det.Model(), img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fixed-point datapath must track the float score closely relative to
	// the score scale.
	if math.Abs(f-q) > 0.25*math.Max(1, math.Abs(f)) {
		t.Errorf("fixed scenario score %v far from float %v", q, f)
	}
}

func TestExtractDescriptorsErrors(t *testing.T) {
	cfg := DefaultConfig()
	set := &dataset.Set{
		Images: []*imgproc.Gray{imgproc.NewGray(32, 32)},
		Labels: []int{1},
	}
	if _, err := ExtractDescriptors(set, cfg); err == nil {
		t.Error("wrong-size window should error")
	}
}

func TestTrainWithMining(t *testing.T) {
	g := dataset.New(77)
	cfg := DefaultConfig()
	opts := DefaultTrainOptions()
	opts.MineRounds = 1
	opts.MineMax = 50
	// Mining scenes: pedestrian-free clutter frames.
	for i := 0; i < 2; i++ {
		opts.MineScenes = append(opts.MineScenes, g.Render(g.NewSpec(false), 256, 256))
	}
	set, err := g.RenderAt(g.NewSpecSet(60, 180), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	det, err := Train(set, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The mined detector must classify fresh windows decently.
	test, err := g.RenderAt(g.NewSpecSet(30, 90), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	x, err := ExtractDescriptors(test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := svm.Accuracy(det.Model(), x, test.Labels); acc < 0.8 {
		t.Errorf("mined detector accuracy %.3f < 0.8", acc)
	}
}

func TestEvaluateOnScene(t *testing.T) {
	det, g := testDetector(t)
	scene, err := g.MakeScene(dataset.SceneConfig{
		W: 480, H: 360, Pedestrians: 2, MinHeight: 128, MaxHeight: 150,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.EvaluateOnScene(scene, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if res.TP+res.FN != len(scene.Truth) {
		t.Errorf("TP+FN = %d, truth = %d", res.TP+res.FN, len(scene.Truth))
	}
	t.Logf("scene eval: %+v (truth %d)", res, len(scene.Truth))
}

func TestPyramidModeString(t *testing.T) {
	modes := []PyramidMode{ImagePyramid, FeaturePyramid, FeaturePyramidChained, FeaturePyramidFixed, PyramidMode(9)}
	for _, m := range modes {
		if m.String() == "" {
			t.Errorf("mode %d has empty string", int(m))
		}
	}
}

func TestMaxScalesLimitsLevels(t *testing.T) {
	det, g := testDetector(t)
	frame, _ := sceneWithPedestrian(g, 512, 512, 128)
	cfg := det.Config()
	cfg.MaxScales = 1
	cfg.Threshold = -1e9 // keep every window so counts reflect coverage
	cfg.NMSOverlap = 0
	d1, err := NewDetector(det.Model(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	one, err := d1.DetectRaw(frame)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxScales = 3
	d3, err := NewDetector(det.Model(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	three, err := d3.DetectRaw(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(three) <= len(one) {
		t.Errorf("3 scales produced %d windows, 1 scale %d", len(three), len(one))
	}
	// With one scale every box is window-sized.
	for _, dd := range one {
		if dd.Box.W() != 64 || dd.Box.H() != 128 {
			t.Fatalf("single-scale box %v not window sized", dd.Box)
		}
	}
}
