package core

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/imgproc"
)

func TestDetectOctaveNativeScale(t *testing.T) {
	det, g := testDetector(t)
	frame, truth := sceneWithPedestrian(g, 256, 256, 128)
	dets, err := det.DetectOctave(frame, OctavePyramidConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) == 0 {
		t.Fatal("octave detector found nothing")
	}
	if geom.IoU(dets[0].Box, truth) < 0.4 {
		t.Errorf("best box %v far from truth %v", dets[0].Box, truth)
	}
}

func TestDetectOctaveLargePedestrianUsesSecondOctave(t *testing.T) {
	det, g := testDetector(t)
	// A pedestrian ~2.1x the window height: beyond the first octave, so
	// it can only be found via the octave-2 feature map.
	frame, truth := sceneWithPedestrian(g, 512, 560, 270)
	dets, err := det.DetectOctave(frame, OctavePyramidConfig{Lambda: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range dets {
		if geom.IoU(d.Box, truth) >= 0.35 {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("large pedestrian missed among %d detections", len(dets))
	}
}

func TestDetectOctaveAgreesWithFeaturePyramid(t *testing.T) {
	det, g := testDetector(t)
	frame, truth := sceneWithPedestrian(g, 320, 320, 140)
	a, err := det.DetectOctave(frame, OctavePyramidConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := det.Detect(frame) // FeaturePyramid mode
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(b) == 0 {
		t.Fatalf("octave %d dets, feature %d dets", len(a), len(b))
	}
	// Both must find the same pedestrian.
	if geom.IoU(a[0].Box, truth) < 0.35 || geom.IoU(b[0].Box, truth) < 0.35 {
		t.Errorf("top detections disagree with truth: octave %v, feature %v (truth %v)",
			a[0].Box, b[0].Box, truth)
	}
}

func TestDetectOctaveTooSmallFrame(t *testing.T) {
	det, _ := testDetector(t)
	if _, err := det.DetectOctave(imgproc.NewGray(16, 16), OctavePyramidConfig{}); err == nil {
		t.Error("tiny frame should error")
	}
}

func TestDetectOctaveMaxScales(t *testing.T) {
	det, g := testDetector(t)
	frame, _ := sceneWithPedestrian(g, 512, 512, 128)
	cfg := det.Config()
	cfg.MaxScales = 1
	cfg.Threshold = -1e9
	cfg.NMSOverlap = 0
	d1, err := NewDetector(det.Model(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	one, err := d1.DetectOctaveRaw(frame, OctavePyramidConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// With one scale every box is window-sized at scale 1.
	for _, dd := range one {
		if dd.Box.W() != 64 || dd.Box.H() != 128 {
			t.Fatalf("single-scale octave box %v not window sized", dd.Box)
		}
	}
}
