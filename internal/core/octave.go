package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/eval"
	"repro/internal/featpyr"
	"repro/internal/hog"
	"repro/internal/imgproc"
)

// This file implements the fast-feature-pyramid baseline of Dollar et al.
// (TPAMI 2014), the closest prior work the paper builds on (reference [4]):
// HOG features are computed exactly once per octave (scales 1, 2, 4, ...)
// from resized images, and the levels in between are approximated by
// resampling the nearest octave's feature map with a power-law channel
// correction F_s ~ (s/s')^-lambda * resample(F_s'). The paper's method is
// the limiting case with a single octave and lambda = 0.

// OctavePyramidConfig tunes the Dollar-style detector mode.
type OctavePyramidConfig struct {
	// Lambda is the power-law correction exponent for HOG-like channels
	// (Dollar et al. measure ~0.11 for gradient histograms; normalized
	// HOG blocks are close to scale-invariant so 0 is also reasonable).
	Lambda float64
}

// DetectOctave runs multi-scale detection with per-octave feature
// computation and intra-octave approximation. It complements the
// PyramidMode detectors on Detector: same model, same window geometry.
func (d *Detector) DetectOctave(frame *imgproc.Gray, oc OctavePyramidConfig) ([]eval.Detection, error) {
	raw, err := d.DetectOctaveRaw(frame, oc)
	if err != nil {
		return nil, err
	}
	if d.cfg.NMSOverlap > 0 {
		raw = NMS(raw, d.cfg.NMSOverlap)
	}
	return raw, nil
}

// DetectOctaveRaw is DetectOctave without non-maximum suppression.
func (d *Detector) DetectOctaveRaw(frame *imgproc.Gray, oc OctavePyramidConfig) ([]eval.Detection, error) {
	if err := d.cfg.Validate(); err != nil {
		return nil, err
	}
	wbx, wby := d.cfg.windowBlocks()

	// Real octaves: scales 1, 2, 4, ... while the window still fits.
	// sx and sy are the exact per-axis frame scales of the octave image
	// (octave sizes are rounded independently per axis).
	type octave struct {
		scale  float64
		sx, sy float64
		fm     *hog.FeatureMap
	}
	var octaves []octave
	for s := 1.0; ; s *= 2 {
		w := int(math.Round(float64(frame.W) / s))
		h := int(math.Round(float64(frame.H) / s))
		if w < d.cfg.WindowW || h < d.cfg.WindowH {
			break
		}
		img := frame
		if s != 1 {
			img = imgproc.Resize(frame, w, h, d.cfg.Interp)
		}
		fm, err := hog.Compute(img, d.cfg.HOG)
		if err != nil {
			return nil, fmt.Errorf("core: octave %.0fx: %w", s, err)
		}
		if fm.BlocksX < wbx || fm.BlocksY < wby {
			break
		}
		octaves = append(octaves, octave{
			scale: s,
			sx:    float64(frame.W) / float64(w),
			sy:    float64(frame.H) / float64(h),
			fm:    fm,
		})
	}
	if len(octaves) == 0 {
		return nil, fmt.Errorf("core: frame %dx%d smaller than detection window", frame.W, frame.H)
	}

	var levels []pyrLevel
	var scratch []*hog.FeatureMap // resampled maps to recycle after the scan
	level := 0
	for {
		if d.cfg.MaxScales > 0 && level >= d.cfg.MaxScales {
			break
		}
		scale := math.Pow(d.cfg.ScaleStep, float64(level))
		// Nearest real octave at or below this scale.
		oi := 0
		for i := range octaves {
			if octaves[i].scale <= scale {
				oi = i
			}
		}
		base := octaves[oi]
		rel := scale / base.scale // intra-octave factor in [1, 2)
		outBX := int(math.Round(float64(base.fm.BlocksX) / rel))
		outBY := int(math.Round(float64(base.fm.BlocksY) / rel))
		if outBX < wbx || outBY < wby {
			break
		}
		var fm *hog.FeatureMap
		if rel == 1 {
			fm = base.fm
		} else {
			var err error
			fm, err = featpyr.ScaleMapRatio(base.fm, outBX, outBY, rel, rel,
				featpyr.ScaleConfig{Lambda: oc.Lambda})
			if err != nil {
				return nil, err
			}
			scratch = append(scratch, fm)
		}
		// Effective per-axis frame scale of this level: octave scale times
		// the intra-octave block-grid ratio (both rounded per axis).
		levels = append(levels, pyrLevel{
			fm:    fm,
			sx:    base.sx * float64(base.fm.BlocksX) / float64(fm.BlocksX),
			sy:    base.sy * float64(base.fm.BlocksY) / float64(fm.BlocksY),
			index: level,
		})
		level++
	}
	out, err := d.scanLevels(context.Background(), levels)
	for _, fm := range scratch {
		featpyr.ReleaseMap(fm)
	}
	if err != nil {
		return nil, err
	}
	sortByScore(out)
	return out, nil
}
