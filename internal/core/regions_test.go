package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/eval"
	"repro/internal/geom"
	"repro/internal/imgproc"
	"repro/internal/obs"
	"repro/internal/svm"
)

func TestFloorCeilDiv(t *testing.T) {
	cases := []struct{ a, b, floor, ceil int }{
		{0, 8, 0, 0},
		{7, 8, 0, 1},
		{8, 8, 1, 1},
		{9, 8, 1, 2},
		{-1, 8, -1, 0},
		{-8, 8, -1, -1},
		{-9, 8, -2, -1},
		{-64, 8, -8, -8},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.floor {
			t.Errorf("floorDiv(%d, %d) = %d, want %d", c.a, c.b, got, c.floor)
		}
		if got := ceilDiv(c.a, c.b); got != c.ceil {
			t.Errorf("ceilDiv(%d, %d) = %d, want %d", c.a, c.b, got, c.ceil)
		}
	}
}

// centerInMappedRegion is the spec of the center rule, written
// independently of the span arithmetic under test: anchor (bx, by) of a
// level with scales (sx, sy) qualifies when its window center, in level
// pixels, lands inside the region's outward-rounded projection.
func centerInMappedRegion(r geom.Rect, bx, by int, sx, sy float64, cell, winW, winH int) bool {
	cx := bx*cell + winW/2
	cy := by*cell + winH/2
	lx0 := int(math.Floor(float64(r.Min.X) / sx))
	ly0 := int(math.Floor(float64(r.Min.Y) / sy))
	lx1 := int(math.Ceil(float64(r.Max.X) / sx))
	ly1 := int(math.Ceil(float64(r.Max.Y) / sy))
	return cx >= lx0 && cx < lx1 && cy >= ly0 && cy < ly1
}

// TestRegionAnchorSpanBruteForce checks the closed-form span against the
// center-rule spec for every anchor of a grid, across random regions and
// scales (including regions hanging off the level and scales that put
// anchor centers on rounding boundaries).
func TestRegionAnchorSpanBruteForce(t *testing.T) {
	const cell, winW, winH = 8, 64, 128
	const nx, ny = 40, 30
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		r := geom.XYWH(rng.Intn(500)-100, rng.Intn(400)-100, 1+rng.Intn(300), 1+rng.Intn(300))
		sx := 1 + 2*rng.Float64()
		sy := 1 + 2*rng.Float64()
		sp, ok := regionAnchorSpan(r, sx, sy, cell, winW, winH, nx, ny)
		for by := 0; by < ny; by++ {
			for bx := 0; bx < nx; bx++ {
				inSpan := ok && bx >= sp.bx0 && bx < sp.bx1 && by >= sp.by0 && by < sp.by1
				want := centerInMappedRegion(r, bx, by, sx, sy, cell, winW, winH)
				if inSpan != want {
					t.Fatalf("trial %d: region %v scales (%.3f, %.3f) anchor (%d, %d): span says %v, center rule says %v (span %+v ok=%v)",
						trial, r, sx, sy, bx, by, inSpan, want, sp, ok)
				}
			}
		}
	}
}

// TestDisjointSpans checks the sweep decomposition: the output covers
// exactly the union of the candidates (no bounding-box over-coverage),
// spans are pairwise disjoint, and spans sharing a block row appear in
// ascending bx order — the raster-order invariant the scan kernels rely on.
func TestDisjointSpans(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rs := NewRegionSet()
	const grid = 32
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(6)
		cand := make([]anchorSpan, 0, n)
		for i := 0; i < n; i++ {
			x0, y0 := rng.Intn(grid-1), rng.Intn(grid-1)
			cand = append(cand, anchorSpan{
				bx0: x0, bx1: x0 + 1 + rng.Intn(grid-x0-1),
				by0: y0, by1: y0 + 1 + rng.Intn(grid-y0-1),
			})
		}
		out := rs.disjointSpans(nil, cand)
		var want, got [grid][grid]bool
		for _, sp := range cand {
			for y := sp.by0; y < sp.by1; y++ {
				for x := sp.bx0; x < sp.bx1; x++ {
					want[y][x] = true
				}
			}
		}
		for _, sp := range out {
			for y := sp.by0; y < sp.by1; y++ {
				for x := sp.bx0; x < sp.bx1; x++ {
					if got[y][x] {
						t.Fatalf("trial %d: anchor (%d, %d) covered twice by %v", trial, x, y, out)
					}
					got[y][x] = true
				}
			}
		}
		if want != got {
			t.Fatalf("trial %d: decomposition of %v covers a different anchor set: %v", trial, cand, out)
		}
		for i := range out {
			for j := i + 1; j < len(out); j++ {
				a, b := out[i], out[j]
				if a.by0 < b.by1 && b.by0 < a.by1 && a.bx1 > b.bx0 {
					t.Fatalf("trial %d: spans %d and %d share a row out of bx order: %+v %+v", trial, i, j, a, b)
				}
			}
		}
	}
}

func TestRegionSetSemantics(t *testing.T) {
	var nilSet *RegionSet
	if nilSet.Active() {
		t.Error("nil region set reports active")
	}
	rs := NewRegionSet()
	if rs.Active() || rs.Rects() != nil {
		t.Error("fresh region set should be inactive")
	}
	in := []geom.Rect{geom.XYWH(10, 10, 50, 50)}
	rs.Set(in)
	in[0] = geom.XYWH(99, 99, 1, 1) // Set must copy, not alias
	if !rs.Active() || len(rs.Rects()) != 1 || rs.Rects()[0] != geom.XYWH(10, 10, 50, 50) {
		t.Errorf("after Set: active=%v rects=%v", rs.Active(), rs.Rects())
	}
	rs.Set(nil)
	if !rs.Active() || len(rs.Rects()) != 0 {
		t.Error("empty Set should stay active with zero rects")
	}
	rs.Clear()
	if rs.Active() || rs.Rects() != nil {
		t.Error("Clear should deactivate")
	}
}

// regionTestModel builds a seeded random-weight model: unlike the trained
// detector it scores windows with plenty of variation on pure noise, which
// gives the differential tests detections at every pyramid level.
func regionTestModel(cfg Config, seed int64) *svm.Model {
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, cfg.DescriptorLen())
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	return &svm.Model{W: w}
}

func regionTestFrame(w, h int, seed int64) *imgproc.Gray {
	rng := rand.New(rand.NewSource(seed))
	frame := imgproc.NewGray(w, h)
	for i := range frame.Pix {
		frame.Pix[i] = uint8(rng.Intn(256))
	}
	return frame
}

// regionTestThreshold picks a detection threshold from the dense score
// distribution: roughly the top-n quantile, nudged to the midpoint between
// two adjacent scores so no window sits exactly on the threshold (the scan
// keeps score > Threshold strictly; a tie would make the differential
// sensitive to comparison direction rather than region logic).
func regionTestThreshold(t *testing.T, maps []*ScoreMap, n int) float64 {
	t.Helper()
	var all []float64
	for _, sm := range maps {
		for _, v := range sm.Scores {
			if !math.IsInf(v, -1) {
				all = append(all, v)
			}
		}
	}
	if len(all) <= n+1 {
		t.Fatalf("only %d dense scores, need > %d", len(all), n+1)
	}
	sort.Float64s(all)
	hi := all[len(all)-n]
	lo := all[len(all)-n-1]
	if hi == lo {
		t.Fatalf("tied scores at the %d-quantile; pick another seed", n)
	}
	return (hi + lo) / 2
}

var regionTestRects = []geom.Rect{
	geom.XYWH(40, 30, 90, 140),
	geom.XYWH(100, 50, 80, 120), // overlaps the first: exercises the sweep
	geom.XYWH(210, 100, 70, 100),
}

// TestScoreMapsROIExactFilter pins the center rule at anchor granularity
// for every pyramid mode: a restricted score map holds exactly the dense
// value at anchors whose window center falls in a region and -Inf
// everywhere else.
func TestScoreMapsROIExactFilter(t *testing.T) {
	for _, mode := range []PyramidMode{ImagePyramid, FeaturePyramid, FeaturePyramidChained} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Mode = mode
			cfg.Workers = 1
			cfg.Regions = NewRegionSet()
			d, err := NewDetector(regionTestModel(cfg, 101), cfg)
			if err != nil {
				t.Fatal(err)
			}
			frame := regionTestFrame(320, 240, 9)
			cfg.Regions.Clear()
			dense, err := d.ScoreMaps(frame)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Regions.Set(regionTestRects)
			roi, err := d.ScoreMaps(frame)
			if err != nil {
				t.Fatal(err)
			}
			if len(roi) != len(dense) {
				t.Fatalf("%d restricted maps vs %d dense", len(roi), len(dense))
			}
			cell := cfg.HOG.CellSize
			kept := 0
			for i, dm := range dense {
				rm := roi[i]
				if rm.W != dm.W || rm.H != dm.H || rm.Scale != dm.Scale || rm.ScaleY != dm.ScaleY {
					t.Fatalf("level %d: geometry mismatch %+v vs %+v", i, rm, dm)
				}
				for y := 0; y < dm.H; y++ {
					for x := 0; x < dm.W; x++ {
						in := false
						for _, r := range regionTestRects {
							if centerInMappedRegion(r, x, y, dm.Scale, dm.ScaleY, cell, cfg.WindowW, cfg.WindowH) {
								in = true
								break
							}
						}
						got := rm.At(x, y)
						if in {
							if got != dm.At(x, y) {
								t.Fatalf("level %d anchor (%d, %d): restricted %v != dense %v", i, x, y, got, dm.At(x, y))
							}
							kept++
						} else if !math.IsInf(got, -1) {
							t.Fatalf("level %d anchor (%d, %d): outside regions but scored %v", i, x, y, got)
						}
					}
				}
			}
			if kept == 0 {
				t.Fatal("regions mapped to zero anchors; test is vacuous")
			}
		})
	}
}

// TestDetectROIExactFilter pins the end-to-end claim: restricted DetectRaw
// returns exactly the dense detections whose window center falls in a
// region, in the same raster order, at worker counts 1 and 4, with the
// exact cascade staying bit-identical on the restricted scan.
func TestDetectROIExactFilter(t *testing.T) {
	base := DefaultConfig()
	base.Workers = 1
	probe, err := NewDetector(regionTestModel(base, 101), base)
	if err != nil {
		t.Fatal(err)
	}
	frame := regionTestFrame(320, 240, 9)
	denseMaps, err := probe.ScoreMaps(frame)
	if err != nil {
		t.Fatal(err)
	}
	thr := regionTestThreshold(t, denseMaps, 200)

	run := func(workers int, cascade CascadeMode, rects []geom.Rect) []eval.Detection {
		t.Helper()
		cfg := DefaultConfig()
		cfg.Workers = workers
		cfg.Threshold = thr
		cfg.Cascade = cascade
		cfg.Regions = NewRegionSet()
		if rects != nil {
			cfg.Regions.Set(rects)
		}
		d, err := NewDetector(regionTestModel(cfg, 101), cfg)
		if err != nil {
			t.Fatal(err)
		}
		dets, err := d.DetectRaw(frame)
		if err != nil {
			t.Fatal(err)
		}
		return dets
	}

	denseDets := run(1, CascadeOff, nil)
	if len(denseDets) != 200 {
		t.Fatalf("threshold quantile yielded %d dense detections, want 200", len(denseDets))
	}

	// Reconstruct every above-threshold anchor's detection from the dense
	// score maps in raster order, keeping the ones the center rule selects.
	// DetectRaw stable-sorts by score, and stability preserves raster order
	// among ties, so sorting the filtered reconstruction the same way yields
	// the exact expected restricted output — derived without the span
	// machinery. The unfiltered reconstruction must equal the dense output,
	// which pins the box arithmetic of the reconstruction itself.
	cell := base.HOG.CellSize
	var want, rebuilt []eval.Detection
	for _, sm := range denseMaps {
		for y := 0; y < sm.H; y++ {
			for x := 0; x < sm.W; x++ {
				score := sm.At(x, y)
				if !(score > thr) {
					continue
				}
				det := eval.Detection{
					Box:   geom.XYWH(x*cell, y*cell, base.WindowW, base.WindowH).ScaleXY(sm.Scale, sm.ScaleY),
					Score: score,
				}
				rebuilt = append(rebuilt, det)
				for _, r := range regionTestRects {
					if centerInMappedRegion(r, x, y, sm.Scale, sm.ScaleY, cell, base.WindowW, base.WindowH) {
						want = append(want, det)
						break
					}
				}
			}
		}
	}
	sortByScore(rebuilt)
	sortByScore(want)
	if len(rebuilt) != len(denseDets) {
		t.Fatalf("score maps rebuilt %d detections, DetectRaw returned %d", len(rebuilt), len(denseDets))
	}
	for i := range rebuilt {
		if rebuilt[i] != denseDets[i] {
			t.Fatalf("rebuilt dense detection %d = %+v, DetectRaw returned %+v", i, rebuilt[i], denseDets[i])
		}
	}
	if len(want) == 0 || len(want) == len(denseDets) {
		t.Fatalf("degenerate expected set: %d of %d dense detections in regions", len(want), len(denseDets))
	}

	for _, workers := range []int{1, 4} {
		for _, cascade := range []CascadeMode{CascadeOff, CascadeExact} {
			got := run(workers, cascade, regionTestRects)
			if len(got) != len(want) {
				t.Fatalf("workers=%d cascade=%v: %d restricted detections, want %d", workers, cascade, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d cascade=%v: detection %d = %+v, want %+v", workers, cascade, i, got[i], want[i])
				}
			}
		}
	}
}

// TestDetectROIFullAndEmptyRegions pins the two boundary cases: a region
// covering the whole frame reproduces the dense scan bit for bit, and an
// active empty set detects nothing; clearing the set restores dense
// scanning on the same detector.
func TestDetectROIFullAndEmptyRegions(t *testing.T) {
	base := DefaultConfig()
	base.Workers = 1
	probe, err := NewDetector(regionTestModel(base, 101), base)
	if err != nil {
		t.Fatal(err)
	}
	frame := regionTestFrame(320, 240, 9)
	denseMaps, err := probe.ScoreMaps(frame)
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig()
	cfg.Workers = 1
	cfg.Threshold = regionTestThreshold(t, denseMaps, 150)
	rs := NewRegionSet()
	cfg.Regions = rs
	d, err := NewDetector(regionTestModel(cfg, 101), cfg)
	if err != nil {
		t.Fatal(err)
	}

	dense, err := d.Detect(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(dense) == 0 {
		t.Fatal("no dense detections; test is vacuous")
	}

	rs.Set([]geom.Rect{geom.R(0, 0, 320, 240)})
	full, err := d.Detect(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != len(dense) {
		t.Fatalf("full-frame region: %d detections vs %d dense", len(full), len(dense))
	}
	for i := range dense {
		if full[i] != dense[i] {
			t.Fatalf("full-frame region detection %d = %+v, want %+v", i, full[i], dense[i])
		}
	}

	rs.Set(nil)
	none, err := d.Detect(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Fatalf("active empty region set produced %d detections", len(none))
	}

	rs.Clear()
	again, err := d.Detect(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(dense) {
		t.Fatalf("after Clear: %d detections vs %d dense", len(again), len(dense))
	}
}

// TestDetectAllocsROI re-pins the TestDetectAllocs budget on the restricted
// scan path with metrics enabled, flipping between restricted and dense
// frames the way the streaming runtime's cadence does: region planning,
// span mapping, and the span-restricted kernels must all run out of the
// RegionSet's reused scratch.
func TestDetectAllocsROI(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 1
	cfg.Metrics = obs.NewDetectRecorder(obs.NewMetrics())
	cfg.Regions = NewRegionSet()
	model := &svm.Model{W: make([]float64, cfg.DescriptorLen()), B: -1}
	d, err := NewDetector(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	frame := regionTestFrame(320, 240, 5)
	rects := []geom.Rect{geom.XYWH(24, 16, 100, 160), geom.XYWH(180, 40, 90, 150)}
	detect := func(i int) {
		if i%3 == 0 {
			cfg.Regions.Clear() // cadence frame: dense full scan
		} else {
			cfg.Regions.Set(rects)
		}
		if _, err := d.Detect(frame); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		detect(i)
	}
	const budget = 32
	i := 0
	n := testing.AllocsPerRun(21, func() {
		detect(i)
		i++
	})
	if n > budget {
		t.Errorf("Detect with regions: %v allocs/op in steady state, budget %d", n, budget)
	}
}
