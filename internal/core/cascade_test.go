package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/geom"
	"repro/internal/imgproc"
	"repro/internal/obs"
	"repro/internal/svm"
)

// cascadeDetector builds a detector over the given model with the given
// pyramid mode, cascade mode, and worker count.
func cascadeDetector(t *testing.T, model *svm.Model, mode PyramidMode, cm CascadeMode, workers int) *Detector {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Mode = mode
	cfg.Cascade = cm
	cfg.Workers = workers
	d, err := NewDetector(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// sameDetections asserts two detection lists are byte-identical: same
// length, same boxes, and bit-equal scores in the same order.
func sameDetections(t *testing.T, label string, want, got []eval.Detection) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d detections, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Box != want[i].Box {
			t.Fatalf("%s: detection %d box %v, want %v", label, i, got[i].Box, want[i].Box)
		}
		if math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
			t.Fatalf("%s: detection %d score %v, want %v (bits differ)",
				label, i, got[i].Score, want[i].Score)
		}
	}
}

// TestCascadeExactBitIdentical is the end-to-end losslessness contract of
// ISSUE 9: with the exact cascade enabled, DetectRaw returns byte-identical
// detections (boxes and score bits) to the dense scan in every pyramid mode
// and at every worker count, on both a pedestrian scene and pure clutter.
func TestCascadeExactBitIdentical(t *testing.T) {
	det, g := testDetector(t)
	model := det.Model()

	ped, _ := sceneWithPedestrian(g, 320, 240, 128)
	clutter := g.Render(g.NewSpec(false), 320, 240)
	frames := []struct {
		name  string
		frame *imgproc.Gray
	}{{"pedestrian", ped}, {"clutter", clutter}}

	sawDetections := false
	for _, mode := range []PyramidMode{ImagePyramid, FeaturePyramid, FeaturePyramidChained, FeaturePyramidFixed} {
		dense := cascadeDetector(t, model, mode, CascadeOff, 1)
		for _, fr := range frames {
			want, err := dense.DetectRaw(fr.frame)
			if err != nil {
				t.Fatalf("%v/%s dense: %v", mode, fr.name, err)
			}
			if len(want) > 0 {
				sawDetections = true
			}
			for _, workers := range []int{1, 3} {
				exact := cascadeDetector(t, model, mode, CascadeExact, workers)
				got, err := exact.DetectRaw(fr.frame)
				if err != nil {
					t.Fatalf("%v/%s exact w=%d: %v", mode, fr.name, workers, err)
				}
				sameDetections(t, mode.String()+"/"+fr.name, want, got)
			}
		}
	}
	// The equivalence must not be vacuous: at least one frame/mode pair has
	// to produce detections for the bit-compare to mean anything.
	if !sawDetections {
		t.Fatal("no mode detected anything; the differential test is vacuous")
	}
}

// concentratedModel builds a synthetic model whose weight mass decays
// geometrically across window block rows (amplitude A*rho^r). Real pruning
// needs such concentration — an i.i.d.-weight model has a Cauchy-Schwarz
// bound far above any achievable score — and a soft-cascade-trained SVM has
// exactly this shape (a few rows carry most of the margin).
func concentratedModel(cfg Config, seed int64, amp, rho float64) *svm.Model {
	wbx, wby := cfg.windowBlocks()
	rowLen := wbx * cfg.HOG.BlockLen()
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, wby*rowLen)
	for r := 0; r < wby; r++ {
		a := amp * math.Pow(rho, float64(r))
		for i := r * rowLen; i < (r+1)*rowLen; i++ {
			w[i] = a * rng.NormFloat64()
		}
	}
	return &svm.Model{W: w}
}

// TestCascadeExactPrunes checks the cascade actually earns its keep on
// clutter: with a concentrated-mass model and a positive threshold, the
// exact scan evaluates a fraction of each window's blocks, the per-stage
// rejection counters fill in, and the detections still match the dense scan
// bit for bit.
func TestCascadeExactPrunes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 1
	cfg.Threshold = 0.5
	model := concentratedModel(cfg, 41, 0.02, 0.55)

	dense, err := NewDetector(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cascade = CascadeExact
	cfg.Metrics = obs.NewDetectRecorder(obs.NewMetrics())
	exact, err := NewDetector(model, cfg)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	frame := imgproc.NewGray(320, 240)
	for i := range frame.Pix {
		frame.Pix[i] = uint8(rng.Intn(256))
	}
	want, err := dense.DetectRaw(frame)
	if err != nil {
		t.Fatal(err)
	}
	got, err := exact.DetectRaw(frame)
	if err != nil {
		t.Fatal(err)
	}
	sameDetections(t, "clutter", want, got)

	wbx, wby := cfg.windowBlocks()
	cs := cfg.Metrics.Metrics().CascadeSnapshot()
	if cs.Windows == 0 {
		t.Fatal("cascade saw no windows")
	}
	if cs.Accepted >= cs.Windows {
		t.Fatalf("no pruning: %d accepted of %d windows", cs.Accepted, cs.Windows)
	}
	full := float64(wbx * wby)
	if cs.MeanBlocks >= full/2 {
		t.Errorf("mean %.1f blocks per window, want well under the dense %g", cs.MeanBlocks, full)
	}
	if len(cs.StageRejects) == 0 {
		t.Error("no per-stage rejection counts recorded")
	}
	var rejects uint64
	for _, n := range cs.StageRejects {
		rejects += n
	}
	if rejects+cs.Accepted != cs.Windows {
		t.Errorf("counter imbalance: %d rejects + %d accepted != %d windows",
			rejects, cs.Accepted, cs.Windows)
	}
}

// TestCascadeCalibratedSubset checks the opt-in lossy mode: calibrated
// detections are a subset of the dense scan's, each with a bit-identical
// score, and the mode is deterministic across worker counts. It also pins
// the constructor contract that calibrated mode demands a calibrated model.
func TestCascadeCalibratedSubset(t *testing.T) {
	det, g := testDetector(t)
	model := det.Model().Clone()
	cfg := DefaultConfig()

	// Fit floors on freshly rendered positives, exactly as pdtrain does.
	set, err := g.RenderAt(g.NewSpecSet(25, 0), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	pos, err := ExtractDescriptors(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wbx, wby := cfg.windowBlocks()
	casc, err := svm.NewCascade(model, wbx, wby, cfg.HOG.BlockLen())
	if err != nil {
		t.Fatal(err)
	}
	const margin = 0.05
	floors, err := casc.Calibrate(model, pos, margin)
	if err != nil {
		t.Fatal(err)
	}
	model.Calib = &svm.CascadeCalib{Stages: wby, Margin: margin, Thresholds: floors}

	frame, _ := sceneWithPedestrian(dataset.New(1003), 320, 240, 128)
	dense := cascadeDetector(t, model, FeaturePyramid, CascadeOff, 1)
	want, err := dense.DetectRaw(frame)
	if err != nil {
		t.Fatal(err)
	}
	byKey := make(map[detIdentity]bool, len(want))
	for _, d := range want {
		byKey[detKey(d)] = true
	}

	cal1 := cascadeDetector(t, model, FeaturePyramid, CascadeCalibrated, 1)
	got, err := cal1.DetectRaw(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) > len(want) {
		t.Fatalf("calibrated found %d detections, dense only %d", len(got), len(want))
	}
	for i, d := range got {
		if !byKey[detKey(d)] {
			t.Fatalf("calibrated detection %d (%v score %v) absent from the dense scan", i, d.Box, d.Score)
		}
	}
	cal3 := cascadeDetector(t, model, FeaturePyramid, CascadeCalibrated, 3)
	got3, err := cal3.DetectRaw(frame)
	if err != nil {
		t.Fatal(err)
	}
	sameDetections(t, "calibrated w=1 vs w=3", got, got3)

	// Calibrated mode without an embedded calibration must fail loudly at
	// construction, not silently scan dense.
	bare := det.Model()
	badCfg := DefaultConfig()
	badCfg.Cascade = CascadeCalibrated
	if _, err := NewDetector(bare, badCfg); err == nil {
		t.Error("calibrated cascade accepted a model with no calibration")
	}
}

// detIdentity is a map key identifying a detection exactly: the box and the
// score at full bit precision.
type detIdentity struct {
	box   geom.Rect
	score uint64
}

func detKey(d eval.Detection) detIdentity {
	return detIdentity{box: d.Box, score: math.Float64bits(d.Score)}
}

// TestCascadeOctaveFallsBackDense checks that octave scanning — whose
// resampled levels carry no block-norm bound — silently degrades exact mode
// to the dense scan: identical detections, and zero cascade traffic in the
// counters (nothing was staged, so nothing is misreported as pruned).
func TestCascadeOctaveFallsBackDense(t *testing.T) {
	det, g := testDetector(t)
	model := det.Model()
	frame, _ := sceneWithPedestrian(g, 320, 240, 128)

	want, err := det.DetectOctaveRaw(frame, OctavePyramidConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Cascade = CascadeExact
	cfg.Workers = 1
	cfg.Metrics = obs.NewDetectRecorder(obs.NewMetrics())
	exact, err := NewDetector(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := exact.DetectOctaveRaw(frame, OctavePyramidConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sameDetections(t, "octave", want, got)
	if cs := cfg.Metrics.Metrics().CascadeSnapshot(); cs.Windows != 0 {
		t.Errorf("octave scan staged %d windows; unbounded levels must scan dense", cs.Windows)
	}
}

// TestScoreMapsCascadeThresholdEquivalent checks the documented score-map
// contract under the cascade: maps are thresholding-equivalent to dense
// maps — anchors above the decision threshold are bit-identical, pruned
// anchors record an upper bound at or below it.
func TestScoreMapsCascadeThresholdEquivalent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 2
	cfg.Threshold = 0.5
	model := concentratedModel(cfg, 43, 0.02, 0.55)

	dense, err := NewDetector(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cascade = CascadeExact
	exact, err := NewDetector(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(44))
	frame := imgproc.NewGray(320, 240)
	for i := range frame.Pix {
		frame.Pix[i] = uint8(rng.Intn(256))
	}
	want, err := dense.ScoreMaps(frame)
	if err != nil {
		t.Fatal(err)
	}
	got, err := exact.ScoreMaps(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d maps, want %d", len(got), len(want))
	}
	pruned := 0
	for li := range want {
		dm, cm := want[li], got[li]
		if cm.W != dm.W || cm.H != dm.H || cm.Scale != dm.Scale || cm.ScaleY != dm.ScaleY {
			t.Fatalf("level %d geometry diverged", li)
		}
		for i := range dm.Scores {
			dv, cv := dm.Scores[i], cm.Scores[i]
			if math.Float64bits(dv) == math.Float64bits(cv) {
				continue
			}
			pruned++
			// The values differ only where the cascade pruned, and a pruned
			// anchor's recorded bound must agree with the dense map that the
			// anchor is below threshold.
			if cv > cfg.Threshold {
				t.Fatalf("level %d anchor %d: pruned value %v above threshold %g", li, i, cv, cfg.Threshold)
			}
			if dv > cfg.Threshold {
				t.Fatalf("level %d anchor %d: cascade pruned an anchor the dense map scores %v", li, i, dv)
			}
		}
	}
	if pruned == 0 {
		t.Error("cascade score maps identical everywhere; pruning never engaged")
	}
}

// TestDetectAllocsCascade re-pins the TestDetectAllocs steady-state budget
// with the exact cascade and the observability layer both enabled: the
// staged path must stay allocation-free (stack row scratch, stack tallies)
// even while every window is being pruned and counted.
func TestDetectAllocsCascade(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 1
	cfg.Cascade = CascadeExact
	cfg.Metrics = obs.NewDetectRecorder(obs.NewMetrics())
	// A zero-weight model has zero suffix bounds, so every window is
	// rejected at stage one: the maximal-traffic path for the tally code.
	model := &svm.Model{W: make([]float64, cfg.DescriptorLen()), B: -1}
	d, err := NewDetector(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	frame := imgproc.NewGray(320, 240)
	for i := range frame.Pix {
		frame.Pix[i] = uint8(rng.Intn(256))
	}
	for i := 0; i < 3; i++ {
		if _, err := d.Detect(frame); err != nil {
			t.Fatal(err)
		}
	}
	const budget = 32
	n := testing.AllocsPerRun(20, func() {
		if _, err := d.Detect(frame); err != nil {
			t.Fatal(err)
		}
	})
	if n > budget {
		t.Errorf("Detect with cascade: %v allocs/op in steady state, budget %d", n, budget)
	}
	cs := cfg.Metrics.Metrics().CascadeSnapshot()
	if cs.Windows == 0 || cs.Accepted != 0 {
		t.Errorf("zero-weight model should stage and reject everything: %+v", cs)
	}
	if cs.MeanBlocks >= float64(cfg.DescriptorLen())/float64(cfg.HOG.BlockLen()) {
		t.Errorf("mean blocks %v shows no stage-one rejection", cs.MeanBlocks)
	}
}
