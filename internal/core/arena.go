package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/hog"
)

// Arena pools the per-frame HOG front-end scratch (hog.Scratch) behind the
// detect path: the luminance plane, cell grid, and base feature map are
// reused across frames instead of reallocated, which removes the dominant
// per-frame allocations from Detect (pinned by TestDetectAllocs).
//
// An Arena is safe for concurrent use; each in-flight frame checks out its
// own scratch. Detectors sharing an Arena (the streaming runtime shares one
// across its degradation rungs, which run one frame at a time) also share
// the pooled buffers, so switching rungs does not re-grow them.
type Arena struct {
	pool   sync.Pool
	gets   atomic.Uint64
	misses atomic.Uint64
}

// NewArena returns an empty arena; scratch buffers grow on first use.
func NewArena() *Arena {
	a := &Arena{}
	a.pool.New = func() any {
		a.misses.Add(1)
		return hog.NewScratch()
	}
	return a
}

// Counters reports how many scratches have been checked out and how many of
// those checkouts missed the pool (constructing a fresh scratch whose
// buffers grow from empty). A steady-state detector should show misses
// bounded by its peak frame concurrency; growth past that means buffers are
// being thrown away somewhere.
func (a *Arena) Counters() (gets, misses uint64) {
	return a.gets.Load(), a.misses.Load()
}

func (a *Arena) get() *hog.Scratch {
	a.gets.Add(1)
	return a.pool.Get().(*hog.Scratch)
}

func (a *Arena) put(s *hog.Scratch) {
	s.Metrics = nil
	a.pool.Put(s)
}
