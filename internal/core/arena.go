package core

import (
	"sync"

	"repro/internal/hog"
)

// Arena pools the per-frame HOG front-end scratch (hog.Scratch) behind the
// detect path: the luminance plane, cell grid, and base feature map are
// reused across frames instead of reallocated, which removes the dominant
// per-frame allocations from Detect (pinned by TestDetectAllocs).
//
// An Arena is safe for concurrent use; each in-flight frame checks out its
// own scratch. Detectors sharing an Arena (the streaming runtime shares one
// across its degradation rungs, which run one frame at a time) also share
// the pooled buffers, so switching rungs does not re-grow them.
type Arena struct {
	pool sync.Pool
}

// NewArena returns an empty arena; scratch buffers grow on first use.
func NewArena() *Arena {
	return &Arena{pool: sync.Pool{New: func() any { return hog.NewScratch() }}}
}

func (a *Arena) get() *hog.Scratch  { return a.pool.Get().(*hog.Scratch) }
func (a *Arena) put(s *hog.Scratch) { a.pool.Put(s) }
