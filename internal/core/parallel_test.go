package core

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/featpyr"
	"repro/internal/fixed"
	"repro/internal/geom"
	"repro/internal/hog"
	"repro/internal/imgproc"
	"repro/internal/svm"
)

// constScoreDetector returns a detector whose model scores every window
// identically (zero weights, positive bias), so a scan enumerates the full
// anchor grid and the output depends only on the coordinate mapping.
func constScoreDetector(t *testing.T, cfg Config) *Detector {
	t.Helper()
	model := &svm.Model{W: make([]float64, cfg.DescriptorLen()), B: 1}
	d, err := NewDetector(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestScanLevelRowsScalesAxesIndependently(t *testing.T) {
	cfg := DefaultConfig()
	d := constScoreDetector(t, cfg)
	fm := &hog.FeatureMap{
		BlocksX:  20,
		BlocksY:  40,
		BlockLen: cfg.HOG.BlockLen(),
		Cfg:      cfg.HOG,
	}
	fm.Feat = make([]float64, fm.BlocksX*fm.BlocksY*fm.BlockLen)
	wbx, wby := cfg.windowBlocks() // 8 x 16
	rows := fm.BlocksY - wby + 1
	cols := fm.BlocksX - wbx + 1
	out, err := d.scanLevelRows(context.Background(), pyrLevel{fm: fm, sx: 1.5, sy: 2.0}, 0, rows, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != rows*cols {
		t.Fatalf("scanned %d windows, want %d", len(out), rows*cols)
	}
	// Raster order: first window anchors at block (0,0), last at
	// (cols-1, rows-1). X coordinates must scale by 1.5 and Y by 2.0; the
	// old single-factor mapping scaled Y by the X ratio.
	cell := cfg.HOG.CellSize
	wantFirst := geom.XYWH(0, 0, cfg.WindowW, cfg.WindowH).ScaleXY(1.5, 2.0)
	wantLast := geom.XYWH((cols-1)*cell, (rows-1)*cell, cfg.WindowW, cfg.WindowH).ScaleXY(1.5, 2.0)
	if out[0].Box != wantFirst {
		t.Errorf("first box %v, want %v", out[0].Box, wantFirst)
	}
	if got := out[len(out)-1].Box; got != wantLast {
		t.Errorf("last box %v, want %v", got, wantLast)
	}
	if got := out[len(out)-1].Box.Min.Y; got != (rows-1)*cell*2 {
		t.Errorf("last box Min.Y = %d, want %d (Y must use the Y factor)", got, (rows-1)*cell*2)
	}
}

func TestDetectRawNonSquareFrameStaysInFrame(t *testing.T) {
	// On a tall frame the per-level rounding makes the Y ratio differ from
	// the X ratio. The old single-factor mapping pushed bottom detections
	// past the frame edge; per-axis mapping keeps every box inside and
	// places the bottom-right anchor of each level exactly.
	frameW, frameH := 256, 384
	frame := imgproc.NewGray(frameW, frameH)
	bounds := geom.XYWH(0, 0, frameW, frameH)
	for _, mode := range []PyramidMode{FeaturePyramid, FeaturePyramidChained, ImagePyramid} {
		cfg := DefaultConfig()
		cfg.Mode = mode
		cfg.MaxScales = 3
		cfg.Threshold = -1 // bias is 1: keep every window
		cfg.Workers = 1
		d := constScoreDetector(t, cfg)
		raw, err := d.DetectRaw(frame)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		for _, dd := range raw {
			if !bounds.ContainsRect(dd.Box) {
				t.Fatalf("%v: box %v outside %dx%d frame", mode, dd.Box, frameW, frameH)
			}
		}
		if mode == FeaturePyramid {
			// Level 2 of the 32x48-block base map: grids round to 26x40,
			// so sx = 32/26 and sy = 48/40 differ. The bottom-right anchor
			// (block 18, 24) must map with each axis's own ratio.
			want := geom.XYWH(18*8, 24*8, cfg.WindowW, cfg.WindowH).ScaleXY(32.0/26.0, 48.0/40.0)
			found := false
			for _, dd := range raw {
				if dd.Box == want {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%v: bottom-right level-2 box %v missing", mode, want)
			}
		}
	}
}

func TestDetectNonSquarePedestrianNearBottom(t *testing.T) {
	det, g := testDetector(t)
	// Tall frame, pedestrian larger than the window and near the bottom:
	// exercises deep-level Y mapping on a non-square frame.
	frameW, frameH, pedH := 256, 512, 154
	spec := g.NewSpec(false)
	frame := g.Render(spec, frameW, frameH)
	scale := float64(pedH) / float64(dataset.WindowH)
	pw := int(float64(dataset.WindowW)*scale + 0.5)
	ph := int(float64(dataset.WindowH)*scale + 0.5)
	pspec := g.NewSpec(true)
	pspec.Pose.CenterXFrac = 0.5
	pspec.Pose.HeightFrac = 0.85
	win := g.Render(pspec, pw, ph)
	x, y := (frameW-pw)/2, frameH-ph-24
	imgproc.Paste(frame, win, x, y, -1)
	truth := geom.XYWH(x, y, pw, ph)
	for _, mode := range []PyramidMode{ImagePyramid, FeaturePyramid} {
		cfg := det.Config()
		cfg.Mode = mode
		d2, err := NewDetector(det.Model(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		dets, err := d2.Detect(frame)
		if err != nil {
			t.Fatal(err)
		}
		best, bestIoU := geom.Rect{}, 0.0
		for _, dd := range dets {
			if iou := geom.IoU(dd.Box, truth); iou > bestIoU {
				best, bestIoU = dd.Box, iou
			}
		}
		if bestIoU < 0.4 {
			t.Errorf("%v: best IoU %.2f for pedestrian near bottom", mode, bestIoU)
			continue
		}
		// The match must be tight vertically as well as horizontally.
		dx := abs(best.Center().X - truth.Center().X)
		dy := abs(best.Center().Y - truth.Center().Y)
		if dx > 24 || dy > 24 {
			t.Errorf("%v: center offset (%d,%d) from truth %v, got %v", mode, dx, dy, truth, best)
		}
	}
}

func TestScoreMapsFollowDetectorMode(t *testing.T) {
	det, g := testDetector(t)
	frame, _ := sceneWithPedestrian(g, 320, 256, 128)
	for _, mode := range []PyramidMode{ImagePyramid, FeaturePyramid, FeaturePyramidChained, FeaturePyramidFixed} {
		cfg := det.Config()
		cfg.Mode = mode
		cfg.MaxScales = 3
		cfg.Threshold = -1e9 // keep every window
		cfg.NMSOverlap = 0
		d2, err := NewDetector(det.Model(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		maps, err := d2.ScoreMaps(frame)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		raw, err := d2.DetectRaw(frame)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		// The maps must cover exactly the windows the detector scans...
		total := 0
		for _, sm := range maps {
			total += len(sm.Scores)
		}
		if total != len(raw) {
			t.Errorf("%v: score maps hold %d windows, detector scanned %d", mode, total, len(raw))
		}
		// ...and score them through the same pyramid: the peak must equal
		// the top detection bit for bit.
		peak := math.Inf(-1)
		for _, sm := range maps {
			if _, _, s := sm.Max(); s > peak {
				peak = s
			}
		}
		if len(raw) == 0 || peak != raw[0].Score {
			t.Errorf("%v: score-map peak %v != top detection %v", mode, peak, raw[0].Score)
		}
	}
}

func TestParallelSerialIdenticalDetections(t *testing.T) {
	det, g := testDetector(t)
	scene, err := g.MakeScene(dataset.DefaultSceneConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []PyramidMode{ImagePyramid, FeaturePyramid, FeaturePyramidChained, FeaturePyramidFixed} {
		cfg := det.Config()
		cfg.Mode = mode
		cfg.MaxScales = 4
		cfg.Threshold = -2 // plenty of detections either side of NMS
		cfg.Workers = 1
		d1, err := NewDetector(det.Model(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Workers = 8
		d8, err := NewDetector(det.Model(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := d1.Detect(scene.Frame)
		if err != nil {
			t.Fatalf("%v serial: %v", mode, err)
		}
		r8, err := d8.Detect(scene.Frame)
		if err != nil {
			t.Fatalf("%v parallel: %v", mode, err)
		}
		if !reflect.DeepEqual(r1, r8) {
			t.Errorf("%v: workers=1 and workers=8 disagree (%d vs %d detections)", mode, len(r1), len(r8))
		}
	}
	// The octave detector shares the scan machinery.
	cfg := det.Config()
	cfg.MaxScales = 4
	cfg.Threshold = -2
	cfg.Workers = 1
	d1, err := NewDetector(det.Model(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	d8, err := NewDetector(det.Model(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := d1.DetectOctave(scene.Frame, OctavePyramidConfig{})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := d8.DetectOctave(scene.Frame, OctavePyramidConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r8) {
		t.Errorf("octave: workers=1 and workers=8 disagree (%d vs %d detections)", len(r1), len(r8))
	}
}

func TestFixedPyramidScalerErrorPropagates(t *testing.T) {
	det, g := testDetector(t)
	frame, _ := sceneWithPedestrian(g, 256, 256, 128)
	cfg := det.Config()
	cfg.Mode = FeaturePyramidFixed
	cfg.MaxScales = 2
	// WeightFrac 0 is rejected by the scaler: a real configuration error,
	// not the expected too-small pyramid termination. It must surface, not
	// silently truncate the pyramid to one level.
	cfg.Fixed = &featpyr.FixedScaler{FeatFmt: fixed.Q(0, 15), WeightFrac: 0}
	d2, err := NewDetector(det.Model(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d2.DetectRaw(frame); err == nil {
		t.Error("broken fixed scaler should error, not truncate the pyramid")
	}
	if _, err := d2.ScoreMaps(frame); err == nil {
		t.Error("ScoreMaps should propagate the fixed scaler error too")
	}
}

func TestConfigValidateRejectsNegativeWorkers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative worker count should fail validation")
	}
}
