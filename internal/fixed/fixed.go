// Package fixed implements the signed fixed-point arithmetic used by the
// hardware model of the pedestrian-detection accelerator.
//
// The FPGA datapath of the paper stores normalized HOG features and SVM
// model weights as narrow signed fixed-point words and implements the
// feature down-scaling stage with shift-and-add networks instead of
// multipliers. This package provides:
//
//   - a Format describing a signed Qm.n word (total width, fractional bits),
//   - saturating conversion, addition and multiplication in that format,
//   - canonical-signed-digit (CSD) decomposition of constants, which is the
//     textbook way to turn a multiplication by a fixed coefficient into a
//     minimal shift-and-add network, and
//   - a ShiftAdd evaluator that multiplies by a decomposed constant using
//     only shifts and additions, exactly as the scaler hardware does.
package fixed

import (
	"fmt"
	"math"
)

// Format describes a signed two's-complement fixed-point word with Width
// total bits (including sign) and Frac fractional bits. A Format word w
// represents the real value w / 2^Frac.
type Format struct {
	Width int // total bits including the sign bit, 2..63
	Frac  int // fractional bits, 0..Width-1
}

// Q returns the Format with the given integer and fractional bit counts
// (plus one sign bit), i.e. a signed Q(ip).(fp) format.
func Q(ip, fp int) Format { return Format{Width: 1 + ip + fp, Frac: fp} }

// Validate reports whether f is a representable format.
func (f Format) Validate() error {
	if f.Width < 2 || f.Width > 63 {
		return fmt.Errorf("fixed: width %d out of range [2,63]", f.Width)
	}
	if f.Frac < 0 || f.Frac >= f.Width {
		return fmt.Errorf("fixed: frac %d out of range [0,%d]", f.Frac, f.Width-1)
	}
	return nil
}

// Max returns the largest raw word representable in f.
func (f Format) Max() int64 { return (int64(1) << (f.Width - 1)) - 1 }

// Min returns the smallest (most negative) raw word representable in f.
func (f Format) Min() int64 { return -(int64(1) << (f.Width - 1)) }

// Eps returns the real value of one least-significant bit in f.
func (f Format) Eps() float64 { return 1 / float64(int64(1)<<f.Frac) }

// String implements fmt.Stringer, e.g. "Q7.8" for Width 16, Frac 8.
func (f Format) String() string {
	return fmt.Sprintf("Q%d.%d", f.Width-1-f.Frac, f.Frac)
}

// Sat clamps the raw word v into the representable range of f.
func (f Format) Sat(v int64) int64 {
	if v > f.Max() {
		return f.Max()
	}
	if v < f.Min() {
		return f.Min()
	}
	return v
}

// FromFloat converts a real value into the nearest representable raw word,
// rounding half away from zero and saturating at the format limits.
func (f Format) FromFloat(x float64) int64 {
	scaled := x * float64(int64(1)<<f.Frac)
	var r float64
	if scaled >= 0 {
		r = math.Floor(scaled + 0.5)
	} else {
		r = math.Ceil(scaled - 0.5)
	}
	if r > float64(f.Max()) {
		return f.Max()
	}
	if r < float64(f.Min()) {
		return f.Min()
	}
	return int64(r)
}

// ToFloat converts a raw word back to its real value.
func (f Format) ToFloat(v int64) float64 {
	return float64(v) / float64(int64(1)<<f.Frac)
}

// Add returns the saturating sum of two raw words in f.
func (f Format) Add(a, b int64) int64 { return f.Sat(a + b) }

// Sub returns the saturating difference of two raw words in f.
func (f Format) Sub(a, b int64) int64 { return f.Sat(a - b) }

// Mul returns the saturating product of two raw words in f, rounding the
// discarded fractional bits to nearest (ties away from zero).
func (f Format) Mul(a, b int64) int64 {
	p := a * b // fits: both operands are < 2^62 in magnitude by Validate
	return f.Sat(roundShift(p, f.Frac))
}

// MulTo multiplies a raw word in f by a raw word in g and returns the result
// expressed in format out, rounding to nearest.
func MulTo(f, g, out Format, a, b int64) int64 {
	p := a * b
	// p has f.Frac+g.Frac fractional bits; bring it to out.Frac.
	shift := f.Frac + g.Frac - out.Frac
	return out.Sat(roundShift(p, shift))
}

// roundShift arithmetic-shifts v right by s bits with round-to-nearest
// (ties away from zero). Negative s shifts left.
func roundShift(v int64, s int) int64 {
	if s <= 0 {
		return v << uint(-s)
	}
	half := int64(1) << uint(s-1)
	if v >= 0 {
		return (v + half) >> uint(s)
	}
	return -((-v + half) >> uint(s))
}

// Quantize rounds the real value x through format f and back, returning the
// nearest representable real value. Useful for modelling datapath precision
// loss in otherwise floating-point code.
func (f Format) Quantize(x float64) float64 { return f.ToFloat(f.FromFloat(x)) }

// CSDTerm is one signed power-of-two term of a canonical-signed-digit
// decomposition: the value Sign * 2^Shift (Sign is +1 or -1).
type CSDTerm struct {
	Shift int // power of two
	Sign  int // +1 or -1
}

// CSD decomposes the non-negative integer c into canonical signed digit
// form: a minimal-length sum of terms ±2^k with no two adjacent non-zero
// digits. The returned terms are ordered from least to most significant.
// CSD(0) returns an empty slice.
func CSD(c int64) []CSDTerm {
	if c < 0 {
		panic("fixed: CSD of negative constant")
	}
	var terms []CSDTerm
	shift := 0
	for c != 0 {
		if c&1 == 1 {
			// Look at the two low bits to decide between +1 and -1 digits.
			if c&3 == 3 { // ...11 -> digit -1, carry
				terms = append(terms, CSDTerm{Shift: shift, Sign: -1})
				c++
			} else { // ...01 -> digit +1
				terms = append(terms, CSDTerm{Shift: shift, Sign: +1})
				c--
			}
		}
		c >>= 1
		shift++
	}
	return terms
}

// CSDValue recombines a CSD decomposition into the integer it represents.
func CSDValue(terms []CSDTerm) int64 {
	var v int64
	for _, t := range terms {
		v += int64(t.Sign) << uint(t.Shift)
	}
	return v
}

// ShiftAdd is a shift-and-add constant multiplier: it represents
// multiplication by a real coefficient as y = sum(±(x << k)) >> frac, the
// structure the paper's scaling modules use instead of DSP multipliers.
type ShiftAdd struct {
	terms []CSDTerm
	frac  int   // fractional bits of the encoded coefficient
	coeff int64 // quantized coefficient (raw, frac fractional bits)
	neg   bool  // true if the coefficient is negative
}

// NewShiftAdd encodes the real coefficient with the given number of
// fractional bits into a shift-and-add network. Coefficients are quantized
// to frac fractional bits first; the quantized value is available via
// Coefficient.
func NewShiftAdd(coefficient float64, frac int) *ShiftAdd {
	if frac < 0 || frac > 30 {
		panic("fixed: shift-add frac out of range [0,30]")
	}
	neg := coefficient < 0
	if neg {
		coefficient = -coefficient
	}
	q := int64(math.Floor(coefficient*float64(int64(1)<<frac) + 0.5))
	return &ShiftAdd{terms: CSD(q), frac: frac, coeff: q, neg: neg}
}

// Coefficient returns the real value actually implemented by the network
// (the requested coefficient quantized to the configured precision).
func (s *ShiftAdd) Coefficient() float64 {
	c := float64(s.coeff) / float64(int64(1)<<s.frac)
	if s.neg {
		return -c
	}
	return c
}

// Adders returns the number of adders the network needs in hardware
// (one fewer than the number of non-zero CSD digits, minimum zero).
func (s *ShiftAdd) Adders() int {
	if len(s.terms) <= 1 {
		return 0
	}
	return len(s.terms) - 1
}

// Terms returns a copy of the CSD terms of the encoded coefficient.
func (s *ShiftAdd) Terms() []CSDTerm {
	out := make([]CSDTerm, len(s.terms))
	copy(out, s.terms)
	return out
}

// Apply multiplies the raw fixed-point word x by the encoded coefficient
// using only shifts and adds, then renormalizes by the coefficient's
// fractional bits with round-to-nearest. The result is in the same format
// as x (caller saturates if needed).
func (s *ShiftAdd) Apply(x int64) int64 {
	var acc int64
	for _, t := range s.terms {
		term := x << uint(t.Shift)
		if t.Sign > 0 {
			acc += term
		} else {
			acc -= term
		}
	}
	acc = roundShift(acc, s.frac)
	if s.neg {
		acc = -acc
	}
	return acc
}
