package fixed

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFormatBasics(t *testing.T) {
	f := Q(7, 8) // Q7.8: 16-bit word
	if f.Width != 16 || f.Frac != 8 {
		t.Fatalf("Q(7,8) = %+v", f)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if f.Max() != 32767 || f.Min() != -32768 {
		t.Errorf("range = [%d,%d], want [-32768,32767]", f.Min(), f.Max())
	}
	if f.Eps() != 1.0/256 {
		t.Errorf("Eps = %v, want 1/256", f.Eps())
	}
	if f.String() != "Q7.8" {
		t.Errorf("String = %q", f.String())
	}
}

func TestFormatValidate(t *testing.T) {
	bad := []Format{
		{Width: 1, Frac: 0},
		{Width: 64, Frac: 8},
		{Width: 8, Frac: 8},
		{Width: 8, Frac: -1},
	}
	for _, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", f)
		}
	}
}

func TestFromFloatRounding(t *testing.T) {
	f := Q(3, 4) // eps = 1/16
	cases := []struct {
		in   float64
		want int64
	}{
		{0, 0},
		{1, 16},
		{-1, -16},
		{0.03125, 1}, // 0.5 LSB rounds away from zero
		{-0.03125, -1},
		{0.03, 0},       // just under half LSB
		{100, f.Max()},  // saturate high
		{-100, f.Min()}, // saturate low
	}
	for _, c := range cases {
		if got := f.FromFloat(c.in); got != c.want {
			t.Errorf("FromFloat(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestRoundTripError(t *testing.T) {
	f := Q(7, 8)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		x := rng.Float64()*200 - 100
		y := f.ToFloat(f.FromFloat(x))
		if math.Abs(y-x) > f.Eps()/2+1e-12 {
			t.Fatalf("round-trip error for %v: got %v (err %v > eps/2)", x, y, math.Abs(y-x))
		}
	}
}

func TestSaturatingAdd(t *testing.T) {
	f := Q(3, 4)
	if got := f.Add(f.Max(), 1); got != f.Max() {
		t.Errorf("Add saturates high: got %d", got)
	}
	if got := f.Sub(f.Min(), 1); got != f.Min() {
		t.Errorf("Sub saturates low: got %d", got)
	}
	if got := f.Add(16, 16); got != 32 {
		t.Errorf("Add(1.0,1.0) = %d, want 32", got)
	}
}

func TestMul(t *testing.T) {
	f := Q(7, 8)
	a := f.FromFloat(1.5)
	b := f.FromFloat(2.0)
	if got := f.ToFloat(f.Mul(a, b)); got != 3.0 {
		t.Errorf("1.5*2.0 = %v, want 3", got)
	}
	// Saturation on overflow.
	big := f.FromFloat(100)
	if got := f.Mul(big, big); got != f.Max() {
		t.Errorf("overflow mul = %d, want max %d", got, f.Max())
	}
	// Negative rounding symmetry: (-x)*y == -(x*y).
	for _, xy := range [][2]float64{{1.3, 0.7}, {0.123, 5.5}, {3.14, 1.0 / 3}} {
		x, y := f.FromFloat(xy[0]), f.FromFloat(xy[1])
		if f.Mul(-x, y) != -f.Mul(x, y) {
			t.Errorf("Mul not odd-symmetric for %v", xy)
		}
	}
}

func TestMulTo(t *testing.T) {
	feat := Q(0, 15) // feature format, 16-bit
	model := Q(3, 12)
	acc := Q(15, 16) // accumulator format
	a := feat.FromFloat(0.25)
	b := model.FromFloat(-2.0)
	got := acc.ToFloat(MulTo(feat, model, acc, a, b))
	if math.Abs(got - -0.5) > 1e-4 {
		t.Errorf("MulTo = %v, want -0.5", got)
	}
}

func TestCSDKnownValues(t *testing.T) {
	// 7 = 8 - 1 in CSD (two digits rather than three).
	terms := CSD(7)
	if len(terms) != 2 {
		t.Fatalf("CSD(7) has %d terms, want 2: %v", len(terms), terms)
	}
	if CSDValue(terms) != 7 {
		t.Errorf("CSD(7) recombines to %d", CSDValue(terms))
	}
	// 0 decomposes to nothing.
	if len(CSD(0)) != 0 {
		t.Errorf("CSD(0) = %v, want empty", CSD(0))
	}
	// Powers of two are single digits.
	if terms := CSD(64); len(terms) != 1 || terms[0] != (CSDTerm{Shift: 6, Sign: 1}) {
		t.Errorf("CSD(64) = %v", terms)
	}
}

// Property: CSD recombines to the original value and has no two adjacent
// non-zero digits (the canonical property).
func TestCSDProperty(t *testing.T) {
	f := func(v uint32) bool {
		c := int64(v % (1 << 24))
		terms := CSD(c)
		if CSDValue(terms) != c {
			return false
		}
		for i := 1; i < len(terms); i++ {
			if terms[i].Shift-terms[i-1].Shift < 2 {
				return false // adjacent non-zero digits
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: CSD uses at most ceil(bits/2)+1 non-zero digits, never more than
// the plain binary representation.
func TestCSDDigitCount(t *testing.T) {
	for c := int64(1); c < 4096; c++ {
		csd := len(CSD(c))
		bin := 0
		for v := c; v != 0; v >>= 1 {
			if v&1 == 1 {
				bin++
			}
		}
		if csd > bin+1 {
			t.Fatalf("CSD(%d) uses %d digits, binary uses %d", c, csd, bin)
		}
	}
}

func TestShiftAddExactness(t *testing.T) {
	// Scaling by 1/1.1 with 12 fractional bits, as the scaler would.
	sa := NewShiftAdd(1/1.1, 12)
	f := Q(7, 8)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		x := int64(rng.Intn(1<<15) - 1<<14)
		got := sa.Apply(x)
		// Reference: multiply by the quantized coefficient with the same rounding.
		want := f.Sat(mulRef(x, sa))
		if f.Sat(got) != want {
			t.Fatalf("Apply(%d) = %d, want %d", x, got, want)
		}
	}
}

func mulRef(x int64, sa *ShiftAdd) int64 {
	c := int64(math.Floor(math.Abs(sa.Coefficient())*float64(int64(1)<<sa.frac) + 0.5))
	p := x * c
	half := int64(1) << uint(sa.frac-1)
	var r int64
	if p >= 0 {
		r = (p + half) >> uint(sa.frac)
	} else {
		r = -((-p + half) >> uint(sa.frac))
	}
	if sa.Coefficient() < 0 {
		r = -r
	}
	return r
}

func TestShiftAddNegativeCoefficient(t *testing.T) {
	sa := NewShiftAdd(-0.5, 8)
	if got := sa.Apply(100); got != -50 {
		t.Errorf("Apply(100) with coeff -0.5 = %d, want -50", got)
	}
	if sa.Coefficient() != -0.5 {
		t.Errorf("Coefficient = %v, want -0.5", sa.Coefficient())
	}
}

func TestShiftAddAdders(t *testing.T) {
	// Coefficient 1.0 with 0 frac bits is a single wire: zero adders.
	if a := NewShiftAdd(1, 0).Adders(); a != 0 {
		t.Errorf("adders for 1.0 = %d, want 0", a)
	}
	// 0.875 = 1 - 1/8: two CSD digits -> one adder.
	if a := NewShiftAdd(0.875, 3).Adders(); a != 1 {
		t.Errorf("adders for 0.875 = %d, want 1", a)
	}
}

// Property: shift-add multiplication approximates real multiplication within
// quantization error bounds.
func TestShiftAddApproximation(t *testing.T) {
	coeffs := []float64{1 / 1.1, 1 / 1.2, 1 / 1.3, 1 / 1.4, 1 / 1.5, 0.5, 0.9091}
	for _, c := range coeffs {
		sa := NewShiftAdd(c, 14)
		for x := int64(-1000); x <= 1000; x += 37 {
			got := float64(sa.Apply(x))
			want := float64(x) * c
			if math.Abs(got-want) > math.Abs(float64(x))*sa.Coefficient()*1e-3+1.0 {
				t.Fatalf("coeff %v: Apply(%d) = %v, want ~%v", c, x, got, want)
			}
		}
	}
}

func TestQuantize(t *testing.T) {
	f := Q(3, 2) // eps = 0.25
	if got := f.Quantize(1.3); got != 1.25 {
		t.Errorf("Quantize(1.3) = %v, want 1.25", got)
	}
	if got := f.Quantize(-1.3); got != -1.25 {
		t.Errorf("Quantize(-1.3) = %v, want -1.25", got)
	}
}

func TestMulToNegativeShift(t *testing.T) {
	// Output format with more fractional bits than the operands combined:
	// the product shifts left instead of right.
	a := Q(7, 2)
	b := Q(7, 2)
	out := Q(7, 8)
	// 1.5 * 2.0 = 3.0 -> 3.0 * 2^8 = 768.
	got := MulTo(a, b, out, a.FromFloat(1.5), b.FromFloat(2.0))
	if out.ToFloat(got) != 3.0 {
		t.Errorf("MulTo with left shift = %v, want 3.0", out.ToFloat(got))
	}
}
