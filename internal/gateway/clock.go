package gateway

import (
	"sync"
	"time"
)

// Clock abstracts time for the gateway: hedge timers, ejection backoffs,
// and probe cadence all read it, so tests (and the chaos harness) can
// drive every timing decision deterministically with a FakeClock instead
// of sleeping real wall time under -race.
type Clock interface {
	Now() time.Time
	// NewTimer returns a one-shot timer firing after d (immediately for
	// d <= 0).
	NewTimer(d time.Duration) Timer
}

// Timer is the one-shot timer a Clock hands out.
type Timer interface {
	// C fires at most once, when the timer elapses.
	C() <-chan time.Time
	// Stop cancels the timer; it reports whether the stop prevented the
	// fire (time.Timer semantics).
	Stop() bool
}

// realClock is the production Clock: thin wrappers over package time.
type realClock struct{}

func (realClock) Now() time.Time                 { return time.Now() }
func (realClock) NewTimer(d time.Duration) Timer { return realTimer{time.NewTimer(d)} }

type realTimer struct{ t *time.Timer }

func (t realTimer) C() <-chan time.Time { return t.t.C }
func (t realTimer) Stop() bool          { return t.t.Stop() }

// FakeClock is a manually advanced Clock for deterministic tests: Now
// stands still until Advance moves it, and Advance fires every pending
// timer whose deadline it reaches, in deadline order. Safe for concurrent
// use. Production code never constructs one; it lives here (not in a
// _test file) so the gateway's own tests and external harnesses share a
// single implementation.
type FakeClock struct {
	mu      sync.Mutex
	now     time.Time
	timers  []*fakeTimer
	created int
	waiters []chan struct{}
}

// NewFakeClock returns a FakeClock reading start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now returns the fake time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// NewTimer returns a timer firing when the fake clock advances past d
// from now (immediately for d <= 0).
func (c *FakeClock) NewTimer(d time.Duration) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTimer{clock: c, deadline: c.now.Add(d), ch: make(chan time.Time, 1)}
	if d <= 0 {
		t.fired = true
		t.ch <- c.now
	}
	c.timers = append(c.timers, t)
	c.created++
	for _, w := range c.waiters {
		select {
		case w <- struct{}{}:
		default:
		}
	}
	return t
}

// Advance moves the clock forward by d and fires every pending timer
// whose deadline is reached, earliest first.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	// Fire in deadline order so chained timeouts resolve the way real time
	// would; the list is small in tests, so a simple repeated min scan is
	// fine.
	for {
		var next *fakeTimer
		for _, t := range c.timers {
			if t.fired || t.stopped || t.deadline.After(c.now) {
				continue
			}
			if next == nil || t.deadline.Before(next.deadline) {
				next = t
			}
		}
		if next == nil {
			return
		}
		next.fired = true
		next.ch <- c.now
	}
}

// BlockUntilTimers waits until at least n timers have been created over
// the clock's lifetime (fired and stopped ones count). Tests use it to
// rendezvous with a goroutine that is about to wait on a timer: once the
// timer exists, an Advance is guaranteed to reach it.
func (c *FakeClock) BlockUntilTimers(n int) {
	c.mu.Lock()
	if c.created >= n {
		c.mu.Unlock()
		return
	}
	w := make(chan struct{}, 1)
	c.waiters = append(c.waiters, w)
	c.mu.Unlock()
	for {
		<-w
		c.mu.Lock()
		done := c.created >= n
		c.mu.Unlock()
		if done {
			return
		}
	}
}

type fakeTimer struct {
	clock    *FakeClock
	deadline time.Time
	ch       chan time.Time
	fired    bool
	stopped  bool
}

func (t *fakeTimer) C() <-chan time.Time { return t.ch }

func (t *fakeTimer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	was := !t.fired && !t.stopped
	t.stopped = true
	return was
}
