package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/imgproc"
	"repro/internal/obs"
	"repro/internal/serve"
)

// ServerConfig tunes the gateway's HTTP front.
type ServerConfig struct {
	// DefaultTimeout bounds a /detect request with no X-Deadline-Ms
	// header. Default 2s.
	DefaultTimeout time.Duration
	// MaxBodyBytes caps the uploaded frame. Default 32 MiB.
	MaxBodyBytes int64
	// RetryAfter is the hint sent with 503 answers. Default 500ms.
	RetryAfter time.Duration
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 500 * time.Millisecond
	}
	return c
}

// Server is the HTTP front of a Gateway, speaking the same endpoint
// contract as serve.Server so serve.Client (and the loadgen) can point at
// a gateway unchanged:
//
//	POST /detect   PGM frame in, DetectResponse JSON out; X-Stream pins
//	               affinity, X-Deadline-Ms bounds the request. 503 when
//	               every replica failed (Retry-After set), 504 on
//	               deadline, upstream status otherwise.
//	GET  /healthz  200 while the process is alive.
//	GET  /readyz   200 while at least one replica is in rotation.
//	GET  /statsz   Stats JSON (gateway counters + per-replica view).
//	GET  /metricsz Prometheus text: gateway counters, hedge delay, and
//	               per-replica latency summaries/counters.
type Server struct {
	cfg ServerConfig
	gw  *Gateway
	mux *http.ServeMux
}

// NewServer wraps a gateway. The caller keeps ownership of the gateway
// (Close it after the HTTP server has drained).
func NewServer(gw *Gateway, cfg ServerConfig) *Server {
	s := &Server{cfg: cfg.withDefaults(), gw: gw, mux: http.NewServeMux()}
	s.mux.HandleFunc("/detect", s.handleDetect)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/statsz", s.handleStatsz)
	s.mux.HandleFunc("/metricsz", s.handleMetricsz)
	return s
}

// Handler returns the HTTP handler serving the contract above.
func (s *Server) Handler() http.Handler { return s.mux }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST a PGM frame"})
		return
	}
	stream := 0
	if v := r.Header.Get("X-Stream"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad X-Stream: " + err.Error()})
			return
		}
		stream = n
	}
	timeout := s.cfg.DefaultTimeout
	if v := r.Header.Get("X-Deadline-Ms"); v != "" {
		ms, err := strconv.Atoi(v)
		if err != nil || ms <= 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("bad X-Deadline-Ms %q", v)})
			return
		}
		timeout = time.Duration(ms) * time.Millisecond
	}
	frame, err := imgproc.ReadPGM(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad PGM frame: " + err.Error()})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	dets, err := s.gw.Do(ctx, stream, frame)
	switch {
	case err == nil:
		resp := serve.DetectResponse{Stream: stream, Detections: make([]serve.Detection, 0, len(dets))}
		for _, d := range dets {
			resp.Detections = append(resp.Detections, serve.Detection{
				X: d.Box.Min.X, Y: d.Box.Min.Y, W: d.Box.W(), H: d.Box.H(), Score: d.Score,
			})
		}
		writeJSON(w, http.StatusOK, resp)
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: "deadline exceeded"})
	case errors.Is(err, context.Canceled):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "request cancelled"})
	default:
		// A pass-through upstream status keeps its code; everything else
		// (every replica failed, pool empty) is 503 + Retry-After so a
		// serve.Client in front retries with backoff.
		var ae *serve.APIError
		if errors.As(err, &ae) && !ae.Transient() {
			writeJSON(w, ae.Status, errorResponse{Error: ae.Message})
			return
		}
		w.Header().Set("Retry-After", strconv.FormatFloat(s.cfg.RetryAfter.Seconds(), 'f', 3, 64))
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// Ready reports whether any replica is in rotation — the gateway can
// still try fail-static when none are, but a rotation-empty pool is the
// signal to take this gateway out of its own upstream rotation.
func (s *Server) Ready() (bool, string) {
	for _, st := range s.gw.ReplicaStates() {
		if st != Ejected {
			return true, ""
		}
	}
	return false, "all replicas ejected"
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if ready, reason := s.Ready(); !ready {
		w.Header().Set("Retry-After", strconv.FormatFloat(s.cfg.RetryAfter.Seconds(), 'f', 3, 64))
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: reason})
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ready": true})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.gw.Stats())
}

func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	st := s.gw.Stats()
	for _, c := range [...]struct {
		name string
		v    uint64
	}{
		{"pdgate_accepted_total", st.Accepted},
		{"pdgate_answered_total", st.Answered},
		{"pdgate_hedges_fired_total", st.HedgesFired},
		{"pdgate_hedge_wins_total", st.HedgeWins},
		{"pdgate_retries_total", st.Retries},
		{"pdgate_ejections_total", st.Ejections},
		{"pdgate_rejoins_total", st.Rejoins},
		{"pdgate_probes_total", st.Probes},
	} {
		fmt.Fprintf(w, "# TYPE %s counter\n", c.name)
		obs.WriteCounterLine(w, c.name, "", c.v)
	}
	fmt.Fprintf(w, "# TYPE pdgate_hedge_delay_seconds gauge\n")
	obs.WriteGaugeLine(w, "pdgate_hedge_delay_seconds", "", st.HedgeDelay.Seconds())
	fmt.Fprintf(w, "# TYPE pdgate_replica_latency_seconds summary\n")
	for _, r := range s.gw.replicas {
		obs.WriteSummary(w, "pdgate_replica_latency_seconds",
			fmt.Sprintf("replica=%q", r.name), r.latency.Snapshot())
	}
	for _, row := range [...]struct {
		name string
		load func(r *replica) uint64
	}{
		{"pdgate_replica_successes_total", func(r *replica) uint64 { return r.successes.Load() }},
		{"pdgate_replica_failures_total", func(r *replica) uint64 { return r.failures.Load() }},
		{"pdgate_replica_hedges_total", func(r *replica) uint64 { return r.hedges.Load() }},
		{"pdgate_replica_ejections_total", func(r *replica) uint64 { return r.ejections.Load() }},
		{"pdgate_replica_rejoins_total", func(r *replica) uint64 { return r.rejoins.Load() }},
	} {
		fmt.Fprintf(w, "# TYPE %s counter\n", row.name)
		for _, r := range s.gw.replicas {
			obs.WriteCounterLine(w, row.name, fmt.Sprintf("replica=%q", r.name), row.load(r))
		}
	}
	fmt.Fprintf(w, "# TYPE pdgate_replica_in_flight gauge\n")
	for _, r := range s.gw.replicas {
		obs.WriteGaugeLine(w, "pdgate_replica_in_flight", fmt.Sprintf("replica=%q", r.name), float64(r.inFlight.Load()))
	}
	states := s.gw.ReplicaStates()
	fmt.Fprintf(w, "# TYPE pdgate_replica_in_rotation gauge\n")
	for i, r := range s.gw.replicas {
		v := 0.0
		if states[i] != Ejected {
			v = 1
		}
		obs.WriteGaugeLine(w, "pdgate_replica_in_rotation", fmt.Sprintf("replica=%q", r.name), v)
	}
}
