package gateway

import (
	"testing"
	"time"
)

// healthTestConfig is the machine configuration the table tests share:
// small numbers so transitions are reachable in a handful of steps, and
// a 100ms/400ms backoff ladder so rung arithmetic is easy to pin.
func healthTestConfig() Config {
	return Config{
		EjectAfter:         3,
		EjectWindow:        4,
		EjectRate:          0.5,
		EjectBackoff:       100 * time.Millisecond,
		EjectBackoffMax:    400 * time.Millisecond,
		ProbationSuccesses: 2,
	}.withDefaults()
}

// TestHealthMachineLifecycle walks the full healthy -> ejected ->
// probation -> readmitted arc on a fake timeline and pins every
// transition edge: the backoff gate before probing, the probation
// success count, and the ladder reset after a full readmission.
func TestHealthMachineLifecycle(t *testing.T) {
	h := newHealthMachine(healthTestConfig())
	now := time.Unix(1000, 0)

	// Two consecutive failures: still in rotation.
	for i := 0; i < 2; i++ {
		if ej, re := h.recordResult(now, true); ej || re {
			t.Fatalf("failure %d transitioned early (ejected=%v readmitted=%v)", i+1, ej, re)
		}
	}
	if h.state != Healthy {
		t.Fatalf("state %v after 2 failures, want Healthy", h.state)
	}
	// Third consecutive failure ejects.
	if ej, _ := h.recordResult(now, true); !ej {
		t.Fatal("third consecutive failure must eject")
	}
	if h.state != Ejected || h.inRotation() {
		t.Fatalf("state %v, inRotation %v after ejection", h.state, h.inRotation())
	}

	// The backoff gates probing: not due at +99ms, due at +100ms.
	if h.probeDue(now.Add(99 * time.Millisecond)) {
		t.Error("probe due before the 100ms backoff elapsed")
	}
	now = now.Add(100 * time.Millisecond)
	if !h.probeDue(now) {
		t.Error("probe not due after the backoff elapsed")
	}

	// In-rotation results arriving while Ejected (attempts that were in
	// flight at ejection time) are stale and must not move the machine.
	if ej, re := h.recordResult(now, true); ej || re {
		t.Error("stale result moved an ejected machine")
	}
	if ej, re := h.recordResult(now, false); ej || re {
		t.Error("stale success moved an ejected machine")
	}

	// A failed probe re-arms the same rung without escalating.
	if h.recordProbe(now, false) {
		t.Error("failed probe must not enter probation")
	}
	if h.probeDue(now.Add(99 * time.Millisecond)) {
		t.Error("failed probe did not re-arm the backoff")
	}
	now = now.Add(100 * time.Millisecond)

	// A successful probe enters probation (in rotation, on watch).
	if !h.recordProbe(now, true) {
		t.Fatal("successful probe must enter probation")
	}
	if h.state != Probation || !h.inRotation() {
		t.Fatalf("state %v, inRotation %v after probe success", h.state, h.inRotation())
	}

	// ProbationSuccesses(2) clean results readmit.
	if ej, re := h.recordResult(now, false); ej || re {
		t.Fatal("first probation success transitioned early")
	}
	ej, re := h.recordResult(now, false)
	if ej || !re {
		t.Fatalf("second probation success: ejected=%v readmitted=%v, want readmission", ej, re)
	}
	if h.state != Healthy {
		t.Fatalf("state %v after readmission, want Healthy", h.state)
	}

	// Full readmission resets the ladder: the next ejection waits the
	// base backoff again, not a doubled rung.
	for i := 0; i < 3; i++ {
		h.recordResult(now, true)
	}
	if h.state != Ejected {
		t.Fatal("post-readmission failures must eject again")
	}
	if h.probeDue(now.Add(99*time.Millisecond)) || !h.probeDue(now.Add(100*time.Millisecond)) {
		t.Error("readmission did not reset the backoff ladder to the base rung")
	}
}

// TestHealthMachineProbationFailureEscalates pins the re-ejection ladder:
// a probation failure ejects again with a doubled backoff, and the ladder
// caps at EjectBackoffMax.
func TestHealthMachineProbationFailureEscalates(t *testing.T) {
	h := newHealthMachine(healthTestConfig())
	now := time.Unix(2000, 0)
	wantBackoffs := []time.Duration{
		100 * time.Millisecond, // episode 1: base
		200 * time.Millisecond, // episode 2: doubled
		400 * time.Millisecond, // episode 3: doubled again == max
		400 * time.Millisecond, // episode 4: capped
		400 * time.Millisecond, // episode 5: still capped
	}
	// First ejection via consecutive failures.
	for i := 0; i < 3; i++ {
		h.recordResult(now, true)
	}
	for ep, want := range wantBackoffs {
		if h.state != Ejected {
			t.Fatalf("episode %d: state %v, want Ejected", ep+1, h.state)
		}
		if h.probeDue(now.Add(want - time.Millisecond)) {
			t.Errorf("episode %d: probe due before the %v backoff", ep+1, want)
		}
		now = now.Add(want)
		if !h.probeDue(now) {
			t.Errorf("episode %d: probe not due after %v", ep+1, want)
		}
		if ep == len(wantBackoffs)-1 {
			break
		}
		// Probe in, then fail on probation: next episode, longer rung.
		if !h.recordProbe(now, true) {
			t.Fatalf("episode %d: probe success must enter probation", ep+1)
		}
		if ej, _ := h.recordResult(now, true); !ej {
			t.Fatalf("episode %d: probation failure must re-eject", ep+1)
		}
	}
}

// TestHealthMachineErrorRateTrigger pins the windowed trigger: failures
// spread out (never EjectAfter consecutive) still eject once the full
// window's failure fraction reaches EjectRate — and never before the
// window has filled.
func TestHealthMachineErrorRateTrigger(t *testing.T) {
	cfg := healthTestConfig()
	cfg.EjectAfter = 100 // keep the consecutive trigger out of the way
	h := newHealthMachine(cfg)
	now := time.Unix(3000, 0)

	// fail, ok, fail: window not yet full (3 of 4) — 2/3 failing would
	// already clear the 0.5 rate, so this pins the full-window guard.
	for i, f := range []bool{true, false, true} {
		if ej, _ := h.recordResult(now, f); ej {
			t.Fatalf("result %d ejected before the window filled", i+1)
		}
	}
	// Fourth result fails: window [fail ok fail fail] = 3/4 >= 0.5.
	if ej, _ := h.recordResult(now, true); !ej {
		t.Fatal("full window at 3/4 failures must eject at rate 0.5")
	}
}

// TestHealthMachineSuccessResetsConsecutive: interleaved successes keep a
// flaky-but-mostly-fine replica in rotation (the consecutive counter
// resets; the windowed rate is the trigger that judges it).
func TestHealthMachineSuccessResetsConsecutive(t *testing.T) {
	cfg := healthTestConfig()
	cfg.EjectWindow = 8
	cfg.EjectRate = 0.9 // rate trigger effectively off
	h := newHealthMachine(cfg)
	now := time.Unix(4000, 0)
	for i := 0; i < 20; i++ {
		// fail, fail, ok, fail, fail, ok, ... never 3 consecutive.
		failed := i%3 != 2
		if ej, _ := h.recordResult(now, failed); ej {
			t.Fatalf("result %d ejected despite the reset at every third result", i+1)
		}
	}
	if h.state != Healthy {
		t.Fatalf("state %v, want Healthy", h.state)
	}
}
