package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/eval"
	"repro/internal/geom"
	"repro/internal/imgproc"
	"repro/internal/serve"
)

// Backend is one detection replica the gateway balances over. The two
// production shapes are LocalBackend (an in-process serve.Supervisor,
// optionally fronted by its serve.Server for readiness) and HTTPBackend
// (a remote pdserve instance); the chaos harness injects fault-wrapped
// ones.
type Backend interface {
	// Detect runs one frame of the given stream and returns the
	// detections. One call is ONE attempt — the gateway owns hedging and
	// retries, so a Backend must not retry internally. Transient
	// failures should surface as *serve.APIError (for remote replicas)
	// or the serve sentinel errors (for local ones) so the gateway can
	// classify them.
	Detect(ctx context.Context, stream int, frame *imgproc.Gray) ([]eval.Detection, error)
	// Probe is the active health check: nil when the replica would pass
	// its readiness probe. Used to readmit ejected replicas, so it must
	// be cheap and side-effect free.
	Probe(ctx context.Context) error
}

// LocalBackend adapts an in-process detection stack. Sup is required;
// Srv, when set, supplies the readiness view (breaker state, draining)
// that the bare supervisor cannot see.
type LocalBackend struct {
	Sup *serve.Supervisor
	Srv *serve.Server
}

// Detect submits the frame to the supervisor.
func (b *LocalBackend) Detect(ctx context.Context, stream int, frame *imgproc.Gray) ([]eval.Detection, error) {
	return b.Sup.Do(ctx, stream, frame)
}

// Probe reports readiness: the server's Ready() when a server fronts the
// stack, otherwise "at least one worker pipeline is live".
func (b *LocalBackend) Probe(context.Context) error {
	if b.Srv != nil {
		if ready, reason := b.Srv.Ready(); !ready {
			return errors.New(reason)
		}
		return nil
	}
	if b.Sup.Running() == 0 {
		return errors.New("no workers running")
	}
	return nil
}

// HTTPBackend is a remote detection server (the serve.Server endpoint
// contract). Unlike serve.Client it performs exactly one attempt per
// Detect call: retry and hedge policy live in the gateway, and a backend
// that silently retried would spend the budget twice.
type HTTPBackend struct {
	// Base is the server's base URL, e.g. "http://127.0.0.1:8080".
	Base string
	// Client is the transport; nil means a plain &http.Client{} (the
	// per-call context carries the deadline).
	Client *http.Client
}

func (b *HTTPBackend) client() *http.Client {
	if b.Client != nil {
		return b.Client
	}
	return http.DefaultClient
}

// Detect is one POST /detect round trip. Non-200 responses come back as
// *serve.APIError carrying the parsed Retry-After hint, so the gateway's
// transient classification matches serve.Client's.
func (b *HTTPBackend) Detect(ctx context.Context, stream int, frame *imgproc.Gray) ([]eval.Detection, error) {
	var body bytes.Buffer
	if err := imgproc.WritePGM(&body, frame); err != nil {
		return nil, fmt.Errorf("gateway: encoding frame: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.Base+"/detect", &body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set("X-Stream", strconv.Itoa(stream))
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.Header.Set("X-Deadline-Ms", strconv.FormatInt(ms, 10))
	}
	resp, err := b.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, &serve.APIError{
			Status:     resp.StatusCode,
			Message:    readErrorMessage(resp.Body),
			RetryAfter: serve.ParseRetryAfter(resp.Header.Get("Retry-After")),
		}
	}
	var dr serve.DetectResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&dr); err != nil {
		return nil, fmt.Errorf("gateway: decoding response: %w", err)
	}
	dets := make([]eval.Detection, 0, len(dr.Detections))
	for _, d := range dr.Detections {
		dets = append(dets, eval.Detection{Box: geom.XYWH(d.X, d.Y, d.W, d.H), Score: d.Score})
	}
	return dets, nil
}

// Probe is one GET /readyz round trip.
func (b *HTTPBackend) Probe(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.Base+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := b.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("readyz: HTTP %d", resp.StatusCode)
	}
	return nil
}

// readErrorMessage extracts the error string from a JSON error body,
// falling back to the raw text. (Mirror of serve's unexported helper.)
func readErrorMessage(r io.Reader) string {
	raw, err := io.ReadAll(io.LimitReader(r, 4096))
	if err != nil || len(raw) == 0 {
		return "(no body)"
	}
	var er struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &er) == nil && er.Error != "" {
		return er.Error
	}
	return string(bytes.TrimSpace(raw))
}
