package gateway

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/eval"
	"repro/internal/geom"
	"repro/internal/imgproc"
	"repro/internal/serve"
)

// scriptBackend is a scripted replica: instant success by default, can be
// stalled (Detect blocks until unstalled or cancelled), forced to fail,
// or given a probe verdict.
type scriptBackend struct {
	mu       sync.Mutex
	stallCh  chan struct{}
	err      error
	probeErr error
	calls    int
}

func (b *scriptBackend) Detect(ctx context.Context, stream int, frame *imgproc.Gray) ([]eval.Detection, error) {
	b.mu.Lock()
	b.calls++
	stall := b.stallCh
	err := b.err
	b.mu.Unlock()
	if stall != nil {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-stall:
		}
	}
	if err != nil {
		return nil, err
	}
	return []eval.Detection{{Box: geom.XYWH(1, 2, 32, 64), Score: 0.9}}, nil
}

func (b *scriptBackend) Probe(context.Context) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.probeErr
}

func (b *scriptBackend) stall() {
	b.mu.Lock()
	b.stallCh = make(chan struct{})
	b.mu.Unlock()
}

func (b *scriptBackend) unstall() {
	b.mu.Lock()
	if b.stallCh != nil {
		close(b.stallCh)
		b.stallCh = nil
	}
	b.mu.Unlock()
}

func (b *scriptBackend) callCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.calls
}

// pinnedStream returns a stream ID whose affinity pin is replica want of n.
func pinnedStream(t *testing.T, want, n int) int {
	t.Helper()
	for s := 0; s < 64; s++ {
		if streamHash(s)%uint64(n) == uint64(want) {
			return s
		}
	}
	t.Fatal("no stream pins to the wanted replica in 64 tries")
	return -1
}

type doResult struct {
	dets []eval.Detection
	err  error
}

// TestHedgeEjectProbeReadmit is the acceptance arc, fully deterministic
// on a fake clock under -race: the primary replica hard-stalls, the hedge
// fires after the latency-quantile delay, the second replica's answer
// comes back, the stalled replica accumulates hedge-loss failures until
// it is ejected, and after it recovers a probe readmits it through the
// probation window.
func TestHedgeEjectProbeReadmit(t *testing.T) {
	clk := NewFakeClock(time.Unix(100, 0))
	b0, b1 := &scriptBackend{}, &scriptBackend{}
	g, err := New([]Backend{b0, b1}, Config{
		EjectAfter:         3,
		EjectBackoff:       100 * time.Millisecond,
		EjectBackoffMax:    400 * time.Millisecond,
		ProbationSuccesses: 3,
		ProbeInterval:      -1, // ProbeSweep driven by hand
		HedgeWarmup:        1,
		HedgeFloor:         5 * time.Millisecond,
		Clock:              clk,
		Seed:               42,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	frame := imgproc.NewGray(8, 8)
	ctx := context.Background()
	pin := pinnedStream(t, 0, 2)
	dos := 0 // total Do calls == hedge timers created (2 replicas)

	// Warmup: one clean request lands on the affinity pin and seeds the
	// latency histogram past HedgeWarmup.
	if _, err := g.Do(ctx, pin, frame); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	dos++
	if b0.callCount() != 1 || b1.callCount() != 0 {
		t.Fatalf("warmup went to r%d, want the pin r0", 1)
	}

	// Hard-stall the primary. Three requests in a row must each be saved
	// by a hedge onto r1 after the 5ms (floor-clamped quantile) delay —
	// and each hedge win charges the overtaken primary a failure, so the
	// third ejects it.
	b0.stall()
	for i := 1; i <= 3; i++ {
		done := make(chan doResult, 1)
		go func() {
			dets, err := g.Do(ctx, pin, frame)
			done <- doResult{dets, err}
		}()
		dos++
		clk.BlockUntilTimers(dos) // the hedge timer exists; Advance reaches it
		clk.Advance(5 * time.Millisecond)
		r := <-done
		if r.err != nil {
			t.Fatalf("stalled round %d: %v", i, r.err)
		}
		if len(r.dets) != 1 {
			t.Fatalf("stalled round %d: %d detections, want the hedge's answer", i, len(r.dets))
		}
	}
	st := g.Stats()
	if st.HedgesFired != 3 || st.HedgeWins != 3 {
		t.Errorf("hedges fired/won = %d/%d, want 3/3", st.HedgesFired, st.HedgeWins)
	}
	if st.Ejections != 1 {
		t.Errorf("ejections = %d, want 1 (three hedge losses at EjectAfter=3)", st.Ejections)
	}
	if states := g.ReplicaStates(); states[0] != Ejected || states[1] != Healthy {
		t.Fatalf("states = %v, want [Ejected Healthy]", states)
	}

	// With r0 out of rotation, traffic flows to r1 without hedging onto
	// the ejected replica.
	b0calls := b0.callCount()
	if _, err := g.Do(ctx, pin, frame); err != nil {
		t.Fatalf("post-ejection request: %v", err)
	}
	dos++
	if b0.callCount() != b0calls {
		t.Error("request reached the ejected replica")
	}

	// The ejection backoff gates probing: a sweep before it elapses sends
	// nothing.
	g.ProbeSweep(ctx)
	if got := g.Stats().Probes; got != 0 {
		t.Fatalf("probes = %d before the backoff elapsed, want 0", got)
	}

	// The replica recovers; after the backoff a probe readmits it into
	// probation, and ProbationSuccesses clean requests rejoin it fully.
	b0.unstall()
	clk.Advance(100 * time.Millisecond)
	g.ProbeSweep(ctx)
	if got := g.Stats().Probes; got != 1 {
		t.Fatalf("probes = %d after the backoff, want 1", got)
	}
	if states := g.ReplicaStates(); states[0] != Probation {
		t.Fatalf("state = %v after probe success, want Probation", states[0])
	}
	for i := 0; i < 3; i++ {
		if _, err := g.Do(ctx, pin, frame); err != nil {
			t.Fatalf("probation request %d: %v", i+1, err)
		}
		dos++
	}
	st = g.Stats()
	if st.Rejoins != 1 {
		t.Errorf("rejoins = %d, want 1", st.Rejoins)
	}
	if states := g.ReplicaStates(); states[0] != Healthy {
		t.Fatalf("state = %v after probation, want Healthy", states[0])
	}
	// Exactly one answer per accepted request, end to end.
	if st.Accepted != uint64(dos) || st.Answered != uint64(dos) {
		t.Errorf("accepted/answered = %d/%d, want %d/%d", st.Accepted, st.Answered, dos, dos)
	}
}

// TestAffinityStableAndFailover pins the affinity contract: a stream
// always lands on its hash-pinned replica, and when that replica is
// ejected the stream fails over to another without error.
func TestAffinityStableAndFailover(t *testing.T) {
	clk := NewFakeClock(time.Unix(100, 0))
	backends := make([]Backend, 4)
	scripts := make([]*scriptBackend, 4)
	for i := range backends {
		scripts[i] = &scriptBackend{}
		backends[i] = scripts[i]
	}
	g, err := New(backends, Config{ProbeInterval: -1, Clock: clk, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	frame := imgproc.NewGray(8, 8)
	ctx := context.Background()

	for stream := 0; stream < 8; stream++ {
		pin := int(streamHash(stream) % 4)
		before := scripts[pin].callCount()
		for i := 0; i < 5; i++ {
			if _, err := g.Do(ctx, stream, frame); err != nil {
				t.Fatalf("stream %d: %v", stream, err)
			}
		}
		if got := scripts[pin].callCount() - before; got != 5 {
			t.Errorf("stream %d: pin r%d served %d of 5 requests", stream, pin, got)
		}
	}

	// Eject stream 0's pin; its traffic must fail over, not fail.
	pin := int(streamHash(0) % 4)
	g.mu.Lock()
	g.replicas[pin].health.eject(clk.Now())
	g.mu.Unlock()
	before := scripts[pin].callCount()
	for i := 0; i < 5; i++ {
		if _, err := g.Do(ctx, 0, frame); err != nil {
			t.Fatalf("failover request %d: %v", i+1, err)
		}
	}
	if scripts[pin].callCount() != before {
		t.Error("ejected pin still receiving traffic")
	}
}

// TestPickP2CLeastInFlight: among untried in-rotation candidates the
// gateway compares two choices by in-flight load; with exactly two
// candidates the comparison is total, so the idle one must win.
func TestPickP2CLeastInFlight(t *testing.T) {
	clk := NewFakeClock(time.Unix(100, 0))
	g, err := New([]Backend{&scriptBackend{}, &scriptBackend{}, &scriptBackend{}},
		Config{ProbeInterval: -1, Clock: clk, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	tried := map[*replica]bool{g.replicas[0]: true}
	g.replicas[1].inFlight.Set(5)
	g.replicas[2].inFlight.Set(0)
	g.mu.Lock()
	defer g.mu.Unlock()
	for i := 0; i < 10; i++ {
		if got := g.pick(0, tried); got != g.replicas[2] {
			t.Fatalf("pick chose %s (in-flight %d), want the idle r2",
				got.name, got.inFlight.Load())
		}
	}
}

// TestPickFailStatic: with every replica ejected, the first attempt still
// picks one (degrade to trying, not certain failure) — but a hedge/retry
// pick (tried non-empty) returns nil rather than spending budget on a
// known-ejected replica.
func TestPickFailStatic(t *testing.T) {
	clk := NewFakeClock(time.Unix(100, 0))
	g, err := New([]Backend{&scriptBackend{}, &scriptBackend{}},
		Config{ProbeInterval: -1, Clock: clk, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, r := range g.replicas {
		r.health.eject(clk.Now())
	}
	if got := g.pick(0, map[*replica]bool{}); got == nil {
		t.Error("first attempt must fail static when all replicas are ejected")
	}
	if got := g.pick(0, map[*replica]bool{g.replicas[0]: true}); got != nil {
		t.Errorf("hedge pick fail-static'd onto ejected %s", got.name)
	}
}

// TestRetryBudget: a post-failure retry spends a token; with the bucket
// drained (burst 1, no successes to refill it) the next failure is
// answered without a retry — a brown-out cannot amplify itself.
func TestRetryBudget(t *testing.T) {
	clk := NewFakeClock(time.Unix(100, 0))
	fail := &serve.APIError{Status: 503, Message: "down"}
	b0, b1 := &scriptBackend{err: fail}, &scriptBackend{err: fail}
	g, err := New([]Backend{b0, b1}, Config{
		ProbeInterval: -1, Clock: clk, Seed: 3,
		RetryBurst: 1, RetryRatio: 0.001,
		EjectAfter: 100, // keep ejection out of this test's way
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	frame := imgproc.NewGray(8, 8)

	if _, err := g.Do(context.Background(), 0, frame); err == nil {
		t.Fatal("Do must fail when every replica fails")
	}
	if got := g.Stats().Retries; got != 1 {
		t.Fatalf("retries = %d after first failure, want 1 (budget had a token)", got)
	}
	if b0.callCount()+b1.callCount() != 2 {
		t.Fatalf("attempts = %d, want 2 (primary + retry)", b0.callCount()+b1.callCount())
	}
	if _, err := g.Do(context.Background(), 0, frame); err == nil {
		t.Fatal("Do must fail when every replica fails")
	}
	if got := g.Stats().Retries; got != 1 {
		t.Errorf("retries = %d after drained budget, want still 1", got)
	}
	if b0.callCount()+b1.callCount() != 3 {
		t.Errorf("attempts = %d, want 3 (no retry on the second request)", b0.callCount()+b1.callCount())
	}
	st := g.Stats()
	if st.Accepted != 2 || st.Answered != 2 {
		t.Errorf("accepted/answered = %d/%d, want 2/2", st.Accepted, st.Answered)
	}
}

// TestHedgeBudget: once the hedge bucket is drained, the timer firing
// launches nothing and the request simply keeps waiting for its primary.
func TestHedgeBudget(t *testing.T) {
	clk := NewFakeClock(time.Unix(100, 0))
	b0, b1 := &scriptBackend{}, &scriptBackend{}
	g, err := New([]Backend{b0, b1}, Config{
		ProbeInterval: -1, Clock: clk, Seed: 5,
		HedgeBurst: 1, HedgeRatio: 0.001,
		HedgeWarmup: 1, HedgeFloor: 5 * time.Millisecond,
		EjectAfter: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	frame := imgproc.NewGray(8, 8)
	ctx := context.Background()
	pin := pinnedStream(t, 0, 2)

	if _, err := g.Do(ctx, pin, frame); err != nil { // warmup
		t.Fatal(err)
	}
	b0.stall()
	// Request 2: the single hedge token saves it.
	done := make(chan doResult, 1)
	go func() {
		dets, err := g.Do(ctx, pin, frame)
		done <- doResult{dets, err}
	}()
	clk.BlockUntilTimers(2)
	clk.Advance(5 * time.Millisecond)
	if r := <-done; r.err != nil {
		t.Fatalf("hedged request: %v", r.err)
	}
	if got := g.Stats().HedgesFired; got != 1 {
		t.Fatalf("hedges fired = %d, want 1", got)
	}
	// Request 3: bucket empty — the timer fires, nothing launches, and
	// the request is answered by the (eventually unstalled) primary.
	go func() {
		dets, err := g.Do(ctx, pin, frame)
		done <- doResult{dets, err}
	}()
	clk.BlockUntilTimers(3)
	clk.Advance(5 * time.Millisecond)
	b0.unstall()
	if r := <-done; r.err != nil {
		t.Fatalf("budget-denied request: %v", r.err)
	}
	if got := g.Stats().HedgesFired; got != 1 {
		t.Errorf("hedges fired = %d after drained budget, want still 1", got)
	}
	if b1.callCount() != 1 {
		t.Errorf("r1 served %d calls, want exactly the one hedge", b1.callCount())
	}
}

// TestClassify pins the fault/retry classification table.
func TestClassify(t *testing.T) {
	for _, tc := range []struct {
		name             string
		err              error
		fault, retryable bool
	}{
		{"nil", nil, false, false},
		{"canceled", context.Canceled, false, false},
		{"deadline", context.DeadlineExceeded, true, false},
		{"api 429", &serve.APIError{Status: 429}, true, true},
		{"api 503", &serve.APIError{Status: 503}, true, true},
		{"api 504", &serve.APIError{Status: 504}, true, true},
		{"api 400", &serve.APIError{Status: 400}, false, false},
		{"api 500", &serve.APIError{Status: 500}, true, false},
		{"worker restarting", serve.ErrWorkerRestarting, true, true},
		{"transport", errors.New("connection refused"), true, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fault, retryable := classify(tc.err)
			if fault != tc.fault || retryable != tc.retryable {
				t.Errorf("classify(%v) = (%v, %v), want (%v, %v)",
					tc.err, fault, retryable, tc.fault, tc.retryable)
			}
		})
	}
}

// TestTokenBucket pins the milli-token math: burst capacity, whole-token
// takes, fractional deposits, and the cap.
func TestTokenBucket(t *testing.T) {
	b := newTokenBucket(2, 0.1)
	if !b.take() || !b.take() {
		t.Fatal("a fresh bucket must hold its burst")
	}
	if b.take() {
		t.Fatal("take beyond the burst must fail")
	}
	// 10 successes at ratio 0.1 = one whole token.
	for i := 0; i < 9; i++ {
		b.deposit()
		if b.take() {
			t.Fatalf("took a token after only %d deposits at ratio 0.1", i+1)
		}
	}
	b.deposit()
	if !b.take() {
		t.Fatal("10 deposits at ratio 0.1 must fund one token")
	}
	// Deposits never exceed the cap.
	for i := 0; i < 100; i++ {
		b.deposit()
	}
	if b.balance > b.max {
		t.Fatalf("balance %d exceeds cap %d", b.balance, b.max)
	}
}

// TestNewEmptyPool: an empty pool is a construction error.
func TestNewEmptyPool(t *testing.T) {
	if _, err := New(nil, Config{}); !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("New(nil) = %v, want ErrNoReplicas", err)
	}
}

// TestFakeClockTimers pins the FakeClock semantics the deterministic
// tests lean on: deadline-ordered firing, Stop, and BlockUntilTimers.
func TestFakeClockTimers(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	t1 := clk.NewTimer(10 * time.Millisecond)
	t2 := clk.NewTimer(5 * time.Millisecond)
	t3 := clk.NewTimer(20 * time.Millisecond)
	clk.BlockUntilTimers(3) // already created; must not block
	if !t3.Stop() {
		t.Error("Stop on a pending timer must report true")
	}
	clk.Advance(15 * time.Millisecond)
	select {
	case <-t2.C():
	default:
		t.Fatal("t2 (5ms) did not fire after Advance(15ms)")
	}
	select {
	case <-t1.C():
	default:
		t.Fatal("t1 (10ms) did not fire after Advance(15ms)")
	}
	select {
	case <-t3.C():
		t.Fatal("stopped timer fired")
	default:
	}
	if t1.Stop() {
		t.Error("Stop after firing must report false")
	}
	// Zero-delay timers fire immediately.
	t4 := clk.NewTimer(0)
	select {
	case <-t4.C():
	default:
		t.Fatal("zero-delay timer did not fire immediately")
	}
	if clk.Now() != time.Unix(0, 0).Add(15*time.Millisecond) {
		t.Errorf("Now = %v, want start+15ms", clk.Now())
	}
}
