package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/imgproc"
	"repro/internal/serve"
)

// newTestGatewayServer builds an httptest server over a gateway of
// scripted backends.
func newTestGatewayServer(t *testing.T, backends ...*scriptBackend) (*httptest.Server, *Gateway) {
	t.Helper()
	bs := make([]Backend, len(backends))
	for i, b := range backends {
		bs[i] = b
	}
	g, err := New(bs, Config{ProbeInterval: -1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	ts := httptest.NewServer(NewServer(g, ServerConfig{}).Handler())
	t.Cleanup(ts.Close)
	return ts, g
}

func pgmBody(t *testing.T) *bytes.Buffer {
	t.Helper()
	var b bytes.Buffer
	if err := imgproc.WritePGM(&b, imgproc.NewGray(16, 16)); err != nil {
		t.Fatal(err)
	}
	return &b
}

// TestServerDetectRoundTrip covers the happy path plus the client-fault
// answers of the gateway's HTTP front.
func TestServerDetectRoundTrip(t *testing.T) {
	ts, g := newTestGatewayServer(t, &scriptBackend{}, &scriptBackend{})

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/detect", pgmBody(t))
	req.Header.Set("X-Stream", "3")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /detect = %d: %s", resp.StatusCode, body)
	}
	var dr serve.DetectResponse
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	if dr.Stream != 3 || len(dr.Detections) != 1 {
		t.Fatalf("response stream=%d dets=%d, want 3/1", dr.Stream, len(dr.Detections))
	}
	if st := g.Stats(); st.Accepted != 1 || st.Answered != 1 {
		t.Errorf("accepted/answered = %d/%d, want 1/1", st.Accepted, st.Answered)
	}

	// Wrong method and bad payloads answer 4xx without touching the pool.
	if resp, _ := http.Get(ts.URL + "/detect"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /detect = %d, want 405", resp.StatusCode)
	}
	if resp, _ := http.Post(ts.URL+"/detect", "application/octet-stream",
		strings.NewReader("not a pgm")); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad frame = %d, want 400", resp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/detect", pgmBody(t))
	req.Header.Set("X-Deadline-Ms", "bogus")
	if resp, _ := http.DefaultClient.Do(req); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad deadline = %d, want 400", resp.StatusCode)
	}
	if st := g.Stats(); st.Accepted != 1 {
		t.Errorf("client faults reached the pool: accepted = %d, want 1", st.Accepted)
	}
}

// TestServerUnavailableAndObservability: total pool failure answers 503
// with a Retry-After hint serve.Client understands, /readyz tracks the
// rotation, and /statsz + /metricsz render the gateway's view.
func TestServerUnavailableAndObservability(t *testing.T) {
	down := &serve.APIError{Status: 503, Message: "down"}
	b0, b1 := &scriptBackend{err: down}, &scriptBackend{err: down}
	ts, g := newTestGatewayServer(t, b0, b1)

	resp, err := http.Post(ts.URL+"/detect", "application/octet-stream", pgmBody(t))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("total failure = %d, want 503", resp.StatusCode)
	}
	if ra := serve.ParseRetryAfter(resp.Header.Get("Retry-After")); ra <= 0 {
		t.Errorf("Retry-After %q did not parse as a positive hint", resp.Header.Get("Retry-After"))
	}

	// Healthy pool: ready. All ejected: not ready (and still answering).
	if resp, _ := http.Get(ts.URL + "/readyz"); resp.StatusCode != http.StatusOK {
		t.Errorf("readyz = %d with a healthy pool, want 200", resp.StatusCode)
	}
	g.mu.Lock()
	for _, r := range g.replicas {
		r.health.eject(g.clock.Now())
	}
	g.mu.Unlock()
	if resp, _ := http.Get(ts.URL + "/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz = %d with all replicas ejected, want 503", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("statsz decode: %v", err)
	}
	resp.Body.Close()
	if st.Accepted != 1 || len(st.Replicas) != 2 || st.Replicas[0].State != "ejected" {
		t.Errorf("statsz = accepted %d, %d replicas, r0 %q; want 1, 2, ejected",
			st.Accepted, len(st.Replicas), st.Replicas[0].State)
	}

	resp, err = http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(raw)
	for _, want := range []string{
		"pdgate_accepted_total 1",
		"pdgate_answered_total 1",
		`pdgate_replica_failures_total{replica="r0"}`,
		`pdgate_replica_latency_seconds{replica="r1",quantile="0.5"}`,
		`pdgate_replica_in_rotation{replica="r0"} 0`,
		"pdgate_hedge_delay_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metricsz missing %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(line, "#") && len(strings.Fields(line)) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

// TestHTTPBackend exercises the remote-replica adapter against a stub
// replica server: wire decoding, header propagation, APIError mapping
// with the Retry-After hint, and the readiness probe.
func TestHTTPBackend(t *testing.T) {
	var gotStream, gotDeadline string
	ready := true
	mux := http.NewServeMux()
	mux.HandleFunc("/detect", func(w http.ResponseWriter, r *http.Request) {
		gotStream = r.Header.Get("X-Stream")
		gotDeadline = r.Header.Get("X-Deadline-Ms")
		if !ready {
			w.Header().Set("Retry-After", "0.250")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]string{"error": "draining"})
			return
		}
		json.NewEncoder(w).Encode(serve.DetectResponse{
			Stream:     7,
			Detections: []serve.Detection{{X: 1, Y: 2, W: 32, H: 64, Score: 0.5}},
		})
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	b := &HTTPBackend{Base: ts.URL}

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	dets, err := b.Detect(ctx, 7, imgproc.NewGray(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 1 || dets[0].Box.W() != 32 {
		t.Fatalf("dets = %v, want the stub's one 32-wide box", dets)
	}
	if gotStream != "7" || gotDeadline == "" {
		t.Errorf("headers stream=%q deadline=%q, want 7 and a deadline", gotStream, gotDeadline)
	}
	if err := b.Probe(ctx); err != nil {
		t.Errorf("probe of a ready replica: %v", err)
	}

	ready = false
	_, err = b.Detect(ctx, 7, imgproc.NewGray(8, 8))
	var ae *serve.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want *serve.APIError", err)
	}
	if ae.Status != 503 || ae.RetryAfter != 250*time.Millisecond || ae.Message != "draining" {
		t.Errorf("APIError = %+v, want 503/250ms/draining", ae)
	}
	if err := b.Probe(ctx); err == nil {
		t.Error("probe of an unready replica must fail")
	}
}
