package gateway

import (
	"time"

	"repro/internal/obs"
)

// HealthState is a replica's position in the ejection state machine.
type HealthState int

const (
	// Healthy: in rotation, taking traffic.
	Healthy HealthState = iota
	// Ejected: out of rotation, waiting out an ejection backoff before
	// it may be probed.
	Ejected
	// Probation: a probe succeeded after the backoff; the replica takes
	// traffic again but must string together ProbationSuccesses clean
	// results before it counts as readmitted — one failure re-ejects it
	// with a longer backoff.
	Probation
)

// String returns the state's label (used in stats and logs).
func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Ejected:
		return "ejected"
	case Probation:
		return "probation"
	default:
		return "unknown"
	}
}

// healthMachine is one replica's passive-outlier + probation state
// machine. It is deliberately a plain struct with no locking and no
// clock of its own: the gateway drives it under its mutex and passes in
// the (possibly fake) current time, which is what makes the
// eject/probe/readmit sequence deterministically testable.
type healthMachine struct {
	cfg Config

	state HealthState
	// consecFails counts consecutive failed results while in rotation.
	consecFails int
	// window is a ring of recent results (true = failure) for the
	// error-rate trigger; windowPos/windowLen track fill.
	window    []bool
	windowPos int
	windowLen int
	// ejections counts consecutive ejection episodes without a full
	// readmission; it indexes the backoff ladder.
	ejections int
	// retryAt is when an Ejected replica may next be probed.
	retryAt time.Time
	// probationOK counts consecutive probation successes.
	probationOK int
}

func newHealthMachine(cfg Config) *healthMachine {
	return &healthMachine{cfg: cfg, window: make([]bool, cfg.EjectWindow)}
}

// recordResult feeds one in-rotation detection outcome (failed=true for a
// replica-attributable failure) at time now. It returns the transition
// that occurred: ejected (Healthy/Probation -> Ejected) or readmitted
// (Probation -> Healthy), or neither.
func (h *healthMachine) recordResult(now time.Time, failed bool) (ejected, readmitted bool) {
	switch h.state {
	case Ejected:
		// A stale result from an attempt that was in flight when the
		// replica got ejected; the ejection already accounted for it.
		return false, false
	case Probation:
		if failed {
			h.eject(now)
			return true, false
		}
		h.probationOK++
		if h.probationOK >= h.cfg.ProbationSuccesses {
			// Full readmission: the backoff ladder resets — the replica
			// has proven itself, so the next incident starts from the
			// bottom rung again.
			h.state = Healthy
			h.ejections = 0
			h.resetCounters()
			return false, true
		}
		return false, false
	}
	// Healthy.
	h.window[h.windowPos] = failed
	h.windowPos = (h.windowPos + 1) % len(h.window)
	if h.windowLen < len(h.window) {
		h.windowLen++
	}
	if !failed {
		h.consecFails = 0
		return false, false
	}
	h.consecFails++
	if h.consecFails >= h.cfg.EjectAfter {
		h.eject(now)
		return true, false
	}
	// The error-rate trigger only fires on a full window: judging a
	// replica on two samples would eject it for one unlucky frame.
	if h.windowLen == len(h.window) {
		fails := 0
		for _, f := range h.window {
			if f {
				fails++
			}
		}
		if float64(fails) >= h.cfg.EjectRate*float64(len(h.window)) {
			h.eject(now)
			return true, false
		}
	}
	return false, false
}

// eject moves the replica out of rotation and arms the next-probe time
// from the capped exponential ladder: episode n waits base * 2^(n-1)
// capped at max.
func (h *healthMachine) eject(now time.Time) {
	h.ejections++
	h.state = Ejected
	h.retryAt = now.Add(h.backoff())
	h.resetCounters()
}

// backoff is the current episode's ejection backoff.
func (h *healthMachine) backoff() time.Duration {
	d := h.cfg.EjectBackoff
	for i := 1; i < h.ejections; i++ {
		d *= 2
		if d >= h.cfg.EjectBackoffMax || d <= 0 {
			return h.cfg.EjectBackoffMax
		}
	}
	if d > h.cfg.EjectBackoffMax {
		return h.cfg.EjectBackoffMax
	}
	return d
}

// resetCounters clears the in-rotation failure tracking (after any state
// transition; the next episode judges fresh evidence).
func (h *healthMachine) resetCounters() {
	h.consecFails = 0
	h.windowPos = 0
	h.windowLen = 0
	h.probationOK = 0
}

// probeDue reports whether an Ejected replica has served its backoff and
// should be probed.
func (h *healthMachine) probeDue(now time.Time) bool {
	return h.state == Ejected && !now.Before(h.retryAt)
}

// recordProbe feeds one active-probe outcome for an Ejected replica: a
// success moves it to Probation (back in rotation, on watch); a failure
// re-arms the same backoff rung without escalating — the replica never
// took traffic, so there is no new evidence of harm, just not-yet-ready.
func (h *healthMachine) recordProbe(now time.Time, ok bool) (probation bool) {
	if h.state != Ejected {
		return false
	}
	if !ok {
		h.retryAt = now.Add(h.backoff())
		return false
	}
	h.state = Probation
	h.probationOK = 0
	return true
}

// inRotation reports whether the replica may take traffic.
func (h *healthMachine) inRotation() bool { return h.state != Ejected }

// replica is one backend plus its health machine and metrics. All mutable
// state except the atomically updated metrics is guarded by the gateway's
// mutex.
type replica struct {
	name    string
	backend Backend
	health  *healthMachine

	// inFlight gauges attempts currently outstanding (the P2C load
	// signal).
	inFlight obs.Gauge
	// latency observes successful attempt latency; the gateway's hedge
	// delay derives from the merged view of these.
	latency obs.Histogram
	// successes/failures count attempt outcomes charged to this replica;
	// hedges counts hedge attempts landed on it; ejections/rejoins count
	// its state transitions; probes counts active probes sent.
	successes, failures, hedges, ejections, rejoins, probes obs.Counter
}

// ReplicaStats is the exported snapshot of one replica.
type ReplicaStats struct {
	Name      string  `json:"name"`
	State     string  `json:"state"`
	InFlight  int64   `json:"in_flight"`
	Successes uint64  `json:"successes"`
	Failures  uint64  `json:"failures"`
	Hedges    uint64  `json:"hedges"`
	Ejections uint64  `json:"ejections"`
	Rejoins   uint64  `json:"rejoins"`
	Probes    uint64  `json:"probes"`
	P50       float64 `json:"p50_seconds"`
	P99       float64 `json:"p99_seconds"`
}
