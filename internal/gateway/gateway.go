// Package gateway is the resilient front end over N detection replicas:
// a replica pool with active health probing and passive outlier ejection,
// power-of-two-choices least-in-flight balancing with stream affinity,
// latency-quantile hedged requests, and token-bucket hedge/retry budgets.
//
// The serving stack below this (internal/serve) keeps one replica alive —
// supervisor restarts, circuit breaker, bounded admission. What it cannot
// do is route around a replica that is up but sick: wedged enough to be
// slow, not wedged enough to fail. The gateway owns that layer. A replica
// that stalls gets hedged around after a delay derived from the gateway's
// own latency histogram; a replica that keeps failing is ejected with
// capped exponential backoff, probed while out, and readmitted through a
// probation window; and both hedges and retries spend from token buckets
// refilled by primary traffic, so a brown-out cannot amplify itself into
// a retry storm.
//
// Every timing decision flows through an injectable Clock and every
// random choice through a seeded RNG, so the eject -> probe -> probation
// -> readmit sequence and the hedge race are deterministically testable
// under -race (and chaos-soakable under internal/chaos).
package gateway

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/eval"
	"repro/internal/imgproc"
	"repro/internal/obs"
	"repro/internal/serve"
)

// ErrNoReplicas is returned by New when the pool is empty, and by Do when
// every replica has been tried without an answer and no retry is possible.
var ErrNoReplicas = errors.New("gateway: no replicas")

// Config tunes the gateway. The zero value gets sensible defaults.
type Config struct {
	// EjectAfter ejects a replica after this many consecutive failures.
	// Default 3.
	EjectAfter int
	// EjectWindow / EjectRate is the second passive trigger: once the
	// window (default 16 results) is full, a failure fraction >= EjectRate
	// (default 0.5) ejects even without a consecutive run.
	EjectWindow int
	EjectRate   float64
	// EjectBackoff is the first ejection's out-of-rotation time; each
	// consecutive ejection episode doubles it up to EjectBackoffMax, and a
	// full readmission resets the ladder. Defaults 1s / 30s.
	EjectBackoff    time.Duration
	EjectBackoffMax time.Duration
	// ProbationSuccesses is how many consecutive clean results a probed
	// replica must serve before it counts as readmitted. Default 3.
	ProbationSuccesses int
	// ProbeInterval is the active prober's sweep cadence. 0 means the
	// default 500ms; negative disables the background prober (tests drive
	// ProbeSweep by hand). ProbeTimeout bounds one probe (default 250ms).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// HedgeQuantile picks the hedge delay from the gateway's own success
	// latency histogram (default p95), clamped to [HedgeFloor, HedgeCeil]
	// (defaults 5ms / 1s). Until HedgeWarmup samples exist (default 8) the
	// delay is HedgeCeil — hedging on no evidence would double load for
	// nothing.
	HedgeQuantile float64
	HedgeFloor    time.Duration
	HedgeCeil     time.Duration
	HedgeWarmup   uint64
	// HedgeRatio / HedgeBurst budget hedges: the bucket holds at most
	// HedgeBurst tokens and gains HedgeRatio tokens per successful
	// request, so steady-state hedges are at most that fraction of primary
	// traffic. RetryRatio / RetryBurst do the same for post-failure
	// retries. Defaults 0.1 / 8 each.
	HedgeRatio float64
	HedgeBurst int
	RetryRatio float64
	RetryBurst int
	// Clock injects time (hedge timers, ejection backoffs, probe cadence);
	// nil means the real clock. Seed seeds the balancing RNG; 0 derives
	// one from the clock. Logf, when set, narrates state transitions.
	Clock Clock
	Seed  int64
	Logf  func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.EjectAfter <= 0 {
		c.EjectAfter = 3
	}
	if c.EjectWindow <= 0 {
		c.EjectWindow = 16
	}
	if c.EjectRate <= 0 || c.EjectRate > 1 {
		c.EjectRate = 0.5
	}
	if c.EjectBackoff <= 0 {
		c.EjectBackoff = time.Second
	}
	if c.EjectBackoffMax < c.EjectBackoff {
		c.EjectBackoffMax = 30 * time.Second
		if c.EjectBackoffMax < c.EjectBackoff {
			c.EjectBackoffMax = c.EjectBackoff
		}
	}
	if c.ProbationSuccesses <= 0 {
		c.ProbationSuccesses = 3
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 250 * time.Millisecond
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile >= 1 {
		c.HedgeQuantile = 0.95
	}
	if c.HedgeFloor <= 0 {
		c.HedgeFloor = 5 * time.Millisecond
	}
	if c.HedgeCeil < c.HedgeFloor {
		c.HedgeCeil = time.Second
		if c.HedgeCeil < c.HedgeFloor {
			c.HedgeCeil = c.HedgeFloor
		}
	}
	if c.HedgeWarmup == 0 {
		c.HedgeWarmup = 8
	}
	if c.HedgeRatio <= 0 {
		c.HedgeRatio = 0.1
	}
	if c.HedgeBurst <= 0 {
		c.HedgeBurst = 8
	}
	if c.RetryRatio <= 0 {
		c.RetryRatio = 0.1
	}
	if c.RetryBurst <= 0 {
		c.RetryBurst = 8
	}
	if c.Clock == nil {
		c.Clock = realClock{}
	}
	return c
}

// tokenBucket meters hedges/retries against primary traffic in integer
// milli-tokens (float accumulation would drift and is not deterministic
// across platforms). Guarded by the gateway mutex.
type tokenBucket struct {
	balance, max, depositMilli int64
}

func newTokenBucket(burst int, ratio float64) *tokenBucket {
	max := int64(burst) * 1000
	return &tokenBucket{balance: max, max: max, depositMilli: int64(ratio * 1000)}
}

// deposit credits one successful primary request.
func (b *tokenBucket) deposit() {
	b.balance += b.depositMilli
	if b.balance > b.max {
		b.balance = b.max
	}
}

// take spends one whole token if available.
func (b *tokenBucket) take() bool {
	if b.balance < 1000 {
		return false
	}
	b.balance -= 1000
	return true
}

// Stats is a gateway counter snapshot.
type Stats struct {
	// Accepted counts Do calls admitted (valid frame, non-empty pool);
	// Answered counts Do returns. The gateway's core invariant is exactly
	// one answer per accepted request: Answered is read before Accepted,
	// so Answered <= Accepted holds in every snapshot even mid-flight.
	Accepted uint64 `json:"accepted"`
	Answered uint64 `json:"answered"`
	// HedgesFired counts hedge attempts launched; HedgeWins those whose
	// answer was the one returned. Retries counts post-failure retry
	// attempts launched.
	HedgesFired uint64 `json:"hedges_fired"`
	HedgeWins   uint64 `json:"hedge_wins"`
	Retries     uint64 `json:"retries"`
	// Ejections / Rejoins / Probes count pool state transitions.
	Ejections uint64 `json:"ejections"`
	Rejoins   uint64 `json:"rejoins"`
	Probes    uint64 `json:"probes"`
	// HedgeDelay is the current hedge delay the next request would use.
	HedgeDelay time.Duration `json:"hedge_delay_ns"`
	// Replicas holds the per-replica view.
	Replicas []ReplicaStats `json:"replicas"`
}

// Gateway fronts a pool of detection replicas. Use New; the zero value is
// not usable.
type Gateway struct {
	cfg      Config
	clock    Clock
	replicas []*replica

	// mu guards the health machines, the RNG, and the token buckets.
	mu          sync.Mutex
	rng         *rand.Rand
	hedgeBucket *tokenBucket
	retryBucket *tokenBucket

	// latency observes every successful attempt gateway-wide; the hedge
	// delay is its configured quantile.
	latency obs.Histogram

	accepted, answered     obs.Counter
	hedgesFired, hedgeWins obs.Counter
	retries                obs.Counter
	ejections, rejoins     obs.Counter
	probesSent             obs.Counter

	stop      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// New builds a gateway over the given replicas. Replica i is named "r<i>"
// in stats and logs.
func New(backends []Backend, cfg Config) (*Gateway, error) {
	if len(backends) == 0 {
		return nil, ErrNoReplicas
	}
	cfg = cfg.withDefaults()
	seed := cfg.Seed
	if seed == 0 {
		seed = cfg.Clock.Now().UnixNano()
	}
	g := &Gateway{
		cfg:         cfg,
		clock:       cfg.Clock,
		rng:         rand.New(rand.NewSource(seed)),
		hedgeBucket: newTokenBucket(cfg.HedgeBurst, cfg.HedgeRatio),
		retryBucket: newTokenBucket(cfg.RetryBurst, cfg.RetryRatio),
		stop:        make(chan struct{}),
	}
	for i, b := range backends {
		g.replicas = append(g.replicas, &replica{
			name:    fmt.Sprintf("r%d", i),
			backend: b,
			health:  newHealthMachine(cfg),
		})
	}
	if cfg.ProbeInterval > 0 {
		g.wg.Add(1)
		go g.probeLoop()
	}
	return g, nil
}

// Close stops the background prober. In-flight Do calls are unaffected
// (their contexts bound them); the caller owns the backends.
func (g *Gateway) Close() {
	g.closeOnce.Do(func() { close(g.stop) })
	g.wg.Wait()
}

func (g *Gateway) logf(format string, args ...any) {
	if g.cfg.Logf != nil {
		g.cfg.Logf(format, args...)
	}
}

// streamHash is FNV-1a over the stream ID's little-endian bytes: the
// affinity mapping must be stable across processes and runs (a restart
// must not reshuffle every stream onto cold replicas).
func streamHash(stream int) uint64 {
	h := uint64(1469598103934665603)
	v := uint64(stream)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 1099511628211
		v >>= 8
	}
	return h
}

// pick selects the next replica to attempt, excluding tried ones. The
// first attempt prefers the stream's affinity pin when it is in rotation
// (stable mapping keeps per-stream worker state warm downstream); all
// other choices are power-of-two-choices least-in-flight over the
// in-rotation candidates. When nothing at all is in rotation the first
// attempt fails static — it picks among ejected replicas rather than
// refusing outright, because a wrong "everything is down" verdict must
// degrade to trying, not to certain failure. Hedges and retries never
// fail static: once one in-rotation replica has been tried, spending
// budget on a known-ejected one buys nothing. Returns nil when no
// candidate remains. Caller holds g.mu.
func (g *Gateway) pick(stream int, tried map[*replica]bool) *replica {
	cands := make([]*replica, 0, len(g.replicas))
	for _, r := range g.replicas {
		if !tried[r] && r.health.inRotation() {
			cands = append(cands, r)
		}
	}
	failStatic := len(cands) == 0
	if failStatic {
		if len(tried) > 0 {
			return nil
		}
		for _, r := range g.replicas {
			cands = append(cands, r)
		}
	}
	switch len(cands) {
	case 0:
		return nil
	case 1:
		return cands[0]
	}
	if len(tried) == 0 && !failStatic {
		pin := g.replicas[streamHash(stream)%uint64(len(g.replicas))]
		for _, r := range cands {
			if r == pin {
				return pin
			}
		}
		// The pin is ejected or already tried: fall through to P2C — this
		// is the affinity failover.
	}
	i := g.rng.Intn(len(cands))
	j := g.rng.Intn(len(cands) - 1)
	if j >= i {
		j++
	}
	if cands[j].inFlight.Load() < cands[i].inFlight.Load() {
		return cands[j]
	}
	return cands[i]
}

// hedgeDelay is the wait before launching a hedge: the configured
// quantile of observed success latency, clamped to [floor, ceil], or the
// ceiling before warmup.
func (g *Gateway) hedgeDelay() time.Duration {
	s := g.latency.Snapshot()
	if s.Count < g.cfg.HedgeWarmup {
		return g.cfg.HedgeCeil
	}
	d := s.Quantile(g.cfg.HedgeQuantile)
	if d < g.cfg.HedgeFloor {
		d = g.cfg.HedgeFloor
	}
	if d > g.cfg.HedgeCeil {
		d = g.cfg.HedgeCeil
	}
	return d
}

// classify maps an attempt error to (fault, retryable): fault charges the
// replica's health machine, retryable permits another replica to be
// tried. Cancellation charges no one — it is the gateway's own doing
// (a sibling won) or the caller's. Deadline expiry charges the replica
// (it was too slow) but cannot be retried (the budget is gone). Client
// faults (4xx other than 429) charge no one and end the request: the
// frame is bad on every replica. Server faults (5xx) charge the replica;
// 500 is not retried (a deterministic detector fault would recur), while
// 429/503/504 — load shed, restarting, timed out — are the transient
// signals worth another replica.
func classify(err error) (fault, retryable bool) {
	if err == nil {
		return false, false
	}
	if errors.Is(err, context.Canceled) {
		return false, false
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return true, false
	}
	var ae *serve.APIError
	if errors.As(err, &ae) {
		if ae.Transient() {
			return true, true
		}
		if ae.Status >= 400 && ae.Status < 500 {
			return false, false
		}
		return true, false
	}
	// Local sentinels (ErrWorkerRestarting, rt.ErrHung wrapped) and
	// transport-level failures: the replica is sick, another may not be.
	return true, true
}

// attemptResult is one backend attempt's outcome.
type attemptResult struct {
	rep     *replica
	dets    []eval.Detection
	err     error
	elapsed time.Duration
}

// launch starts one attempt goroutine. The results channel is buffered
// for the maximum number of launches, so an abandoned attempt's late
// result never blocks its goroutine.
func (g *Gateway) launch(ctx context.Context, rep *replica, stream int, frame *imgproc.Gray, results chan<- attemptResult) {
	rep.inFlight.Add(1)
	start := g.clock.Now()
	go func() {
		dets, err := rep.backend.Detect(ctx, stream, frame)
		rep.inFlight.Add(-1)
		results <- attemptResult{rep: rep, dets: dets, err: err, elapsed: g.clock.Now().Sub(start)}
	}()
}

// recordSuccess books a winning attempt: latency into both histograms,
// the health machine fed, the budgets refilled, and any still-outstanding
// sibling attempts charged a hedge-loss failure — the replica that was
// overtaken is the slow one, and its abandoned attempt's eventual
// cancellation is deliberately not counted (that would charge it twice,
// or charge cancellation as if it were the fault).
func (g *Gateway) recordSuccess(win attemptResult, pending map[*replica]bool) {
	now := g.clock.Now()
	win.rep.successes.Inc()
	win.rep.latency.Observe(win.elapsed)
	g.latency.Observe(win.elapsed)
	g.mu.Lock()
	defer g.mu.Unlock()
	g.hedgeBucket.deposit()
	g.retryBucket.deposit()
	if ej, re := win.rep.health.recordResult(now, false); ej || re {
		g.noteTransition(win.rep, ej, re)
	}
	for rep, out := range pending {
		if !out || rep == win.rep {
			continue
		}
		rep.failures.Inc()
		if ej, re := rep.health.recordResult(now, true); ej || re {
			g.noteTransition(rep, ej, re)
		}
	}
}

// recordFailure books one failed attempt against its replica.
func (g *Gateway) recordFailure(r attemptResult) {
	r.rep.failures.Inc()
	g.mu.Lock()
	defer g.mu.Unlock()
	if ej, re := r.rep.health.recordResult(g.clock.Now(), true); ej || re {
		g.noteTransition(r.rep, ej, re)
	}
}

// noteTransition tallies and narrates an ejection or readmission. Caller
// holds g.mu.
func (g *Gateway) noteTransition(rep *replica, ejected, readmitted bool) {
	if ejected {
		rep.ejections.Inc()
		g.ejections.Inc()
		g.logf("gateway: replica %s ejected (episode %d, retry in %v)",
			rep.name, rep.health.ejections, rep.health.backoff())
	}
	if readmitted {
		rep.rejoins.Inc()
		g.rejoins.Inc()
		g.logf("gateway: replica %s readmitted", rep.name)
	}
}

// Do runs one frame of the given stream through the pool: affinity-pinned
// primary, a budgeted hedge after the latency-quantile delay, and a
// budgeted retry on a fresh replica after total failure. Exactly one
// answer comes back per call, and the first success wins — the loser's
// context is cancelled.
func (g *Gateway) Do(ctx context.Context, stream int, frame *imgproc.Gray) ([]eval.Detection, error) {
	if frame == nil {
		return nil, errors.New("gateway: nil frame")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g.accepted.Inc()
	defer g.answered.Inc()

	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Cap: primary + one hedge + one retry.
	results := make(chan attemptResult, 3)
	tried := make(map[*replica]bool, len(g.replicas))
	pending := make(map[*replica]bool, len(g.replicas))

	g.mu.Lock()
	primary := g.pick(stream, tried)
	g.mu.Unlock()
	if primary == nil {
		return nil, ErrNoReplicas
	}
	tried[primary], pending[primary] = true, true
	g.launch(actx, primary, stream, frame, results)

	// The hedge timer only exists while a hedge is possible: a second
	// replica must exist. It is armed once; a fired-and-spent (or
	// budget-denied) hedge does not re-arm.
	var hedgeC <-chan time.Time
	var hedgeTimer Timer
	if len(g.replicas) > 1 {
		hedgeTimer = g.clock.NewTimer(g.hedgeDelay())
		hedgeC = hedgeTimer.C()
		defer hedgeTimer.Stop()
	}

	hedged := false
	retried := false
	var lastErr error
	outstanding := 1
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-hedgeC:
			hedgeC = nil
			g.mu.Lock()
			var cand *replica
			if g.hedgeBucket.take() {
				cand = g.pick(stream, tried)
				if cand == nil {
					// No untried replica: refund — nothing was hedged.
					g.hedgeBucket.balance += 1000
				}
			}
			g.mu.Unlock()
			if cand == nil {
				continue
			}
			hedged = true
			g.hedgesFired.Inc()
			cand.hedges.Inc()
			tried[cand], pending[cand] = true, true
			outstanding++
			g.launch(actx, cand, stream, frame, results)
		case r := <-results:
			outstanding--
			pending[r.rep] = false
			if r.err == nil {
				g.recordSuccess(r, pending)
				if hedged && r.rep != primary {
					g.hedgeWins.Inc()
				}
				return r.dets, nil
			}
			lastErr = r.err
			fault, retryable := classify(r.err)
			if fault {
				g.recordFailure(r)
			}
			if outstanding > 0 {
				// A sibling is still running; its answer decides.
				continue
			}
			if !retryable {
				return nil, r.err
			}
			if !retried {
				g.mu.Lock()
				var cand *replica
				if g.retryBucket.take() {
					cand = g.pick(stream, tried)
					if cand == nil {
						g.retryBucket.balance += 1000
					}
				}
				g.mu.Unlock()
				if cand != nil {
					retried = true
					g.retries.Inc()
					tried[cand], pending[cand] = true, true
					outstanding++
					g.launch(actx, cand, stream, frame, results)
					continue
				}
			}
			return nil, fmt.Errorf("gateway: %d attempt(s) failed: %w", len(tried), lastErr)
		}
	}
}

// probeLoop is the background active prober: every ProbeInterval it
// sweeps the pool and probes each ejected replica whose backoff has
// elapsed.
func (g *Gateway) probeLoop() {
	defer g.wg.Done()
	for {
		t := g.clock.NewTimer(g.cfg.ProbeInterval)
		select {
		case <-g.stop:
			t.Stop()
			return
		case <-t.C():
			g.ProbeSweep(context.Background())
		}
	}
}

// ProbeSweep probes every ejected replica whose backoff has elapsed and
// feeds the outcomes to the health machines. Exported so tests (and the
// chaos harness) with the prober disabled can drive readmission
// deterministically.
func (g *Gateway) ProbeSweep(ctx context.Context) {
	g.mu.Lock()
	now := g.clock.Now()
	var due []*replica
	for _, r := range g.replicas {
		if r.health.probeDue(now) {
			due = append(due, r)
		}
	}
	g.mu.Unlock()
	for _, r := range due {
		pctx, cancel := context.WithTimeout(ctx, g.cfg.ProbeTimeout)
		err := r.backend.Probe(pctx)
		cancel()
		r.probes.Inc()
		g.probesSent.Inc()
		g.mu.Lock()
		if r.health.recordProbe(g.clock.Now(), err == nil) {
			g.logf("gateway: replica %s probe ok, entering probation", r.name)
		} else if err != nil {
			g.logf("gateway: replica %s probe failed (%v), backoff re-armed", r.name, err)
		}
		g.mu.Unlock()
	}
}

// ReplicaStates returns each replica's current health state, indexed as
// the backends were passed to New.
func (g *Gateway) ReplicaStates() []HealthState {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]HealthState, len(g.replicas))
	for i, r := range g.replicas {
		out[i] = r.health.state
	}
	return out
}

// Stats snapshots the gateway counters. Answered is loaded before
// Accepted so concurrent pollers always observe Answered <= Accepted.
func (g *Gateway) Stats() Stats {
	st := Stats{
		Answered:    g.answered.Load(),
		Accepted:    g.accepted.Load(),
		HedgesFired: g.hedgesFired.Load(),
		HedgeWins:   g.hedgeWins.Load(),
		Retries:     g.retries.Load(),
		Ejections:   g.ejections.Load(),
		Rejoins:     g.rejoins.Load(),
		Probes:      g.probesSent.Load(),
		HedgeDelay:  g.hedgeDelay(),
	}
	g.mu.Lock()
	states := make([]HealthState, len(g.replicas))
	for i, r := range g.replicas {
		states[i] = r.health.state
	}
	g.mu.Unlock()
	for i, r := range g.replicas {
		s := r.latency.Snapshot()
		st.Replicas = append(st.Replicas, ReplicaStats{
			Name:      r.name,
			State:     states[i].String(),
			InFlight:  r.inFlight.Load(),
			Successes: r.successes.Load(),
			Failures:  r.failures.Load(),
			Hedges:    r.hedges.Load(),
			Ejections: r.ejections.Load(),
			Rejoins:   r.rejoins.Load(),
			Probes:    r.probes.Load(),
			P50:       s.Quantile(0.5).Seconds(),
			P99:       s.Quantile(0.99).Seconds(),
		})
	}
	return st
}
