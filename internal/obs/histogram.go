package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket geometry: a log-linear layout (HdrHistogram-style).
// Values are nanoseconds. Each power-of-two octave is split into
// histSub = 2^histSubBits linear sub-buckets, so the relative quantile
// error is at most 1/histSub (12.5% at histSubBits = 2 — plenty for
// latency percentiles). Everything at or past 2^histMaxExp ns (~18 min)
// lands in the last bucket.
const (
	histSubBits = 2
	histSub     = 1 << histSubBits
	histMaxExp  = 40
	histBuckets = histSub + (histMaxExp-histSubBits)*histSub
)

// bucketIndex maps a nanosecond value to its bucket.
func bucketIndex(v uint64) int {
	if v < histSub {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // position of the top set bit, >= histSubBits
	if exp >= histMaxExp {
		return histBuckets - 1
	}
	sub := (v >> (uint(exp) - histSubBits)) & (histSub - 1)
	return histSub + (exp-histSubBits)*histSub + int(sub)
}

// bucketUpper is the inclusive upper bound (ns) of bucket i; quantiles
// report this bound, so they never understate a latency.
func bucketUpper(i int) uint64 {
	if i < histSub {
		return uint64(i)
	}
	exp := histSubBits + (i-histSub)/histSub
	sub := uint64((i - histSub) % histSub)
	width := uint64(1) << (uint(exp) - histSubBits)
	return uint64(1)<<uint(exp) + (sub+1)*width - 1
}

// Histogram is a preallocated latency histogram with log-spaced buckets.
// Observe is lock-free, allocation-free, and safe for concurrent use; the
// zero value is ready to record. Quantiles come from Snapshot, off the
// hot path.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // ns
	max     atomic.Uint64 // ns
	buckets [histBuckets]atomic.Uint64
}

// Observe records one duration. Negative durations clamp to zero. Safe on
// a nil receiver (no-op), so optional timer hooks can be passed around as
// possibly-nil *Histogram.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	var v uint64
	if d > 0 {
		v = uint64(d)
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
	h.buckets[bucketIndex(v)].Add(1)
}

// Quantile returns the q-quantile of the recorded durations without the
// caller taking an explicit snapshot — shorthand for Snapshot().Quantile(q)
// for single-quantile reads off the scrape/decision path (the gateway's
// hedging delay reads one quantile per request). Safe on a nil receiver
// (returns 0). The bucket-error contract is HistogramSnapshot.Quantile's.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	s := h.Snapshot()
	return s.Quantile(q)
}

// HistogramSnapshot is a point-in-time copy of a histogram. Counters are
// loaded individually, so a snapshot taken while recording proceeds may
// be off by the frames in flight during the loads — fine for monitoring,
// not a linearizable cut.
type HistogramSnapshot struct {
	Count   uint64
	Sum     time.Duration
	Max     time.Duration
	buckets [histBuckets]uint64
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = time.Duration(h.sum.Load())
	s.Max = time.Duration(h.max.Load())
	for i := range s.buckets {
		s.buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Mean returns the mean observed duration (0 when empty).
func (s *HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile returns the q-quantile (0 < q <= 1) as the upper bound of the
// bucket containing it, so the true latency is never understated by more
// than the bucket's relative width (<= 12.5%). Returns 0 when empty.
func (s *HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation, 1-based, rounded up.
	rank := uint64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i, c := range s.buckets {
		cum += c
		if cum >= rank {
			u := time.Duration(bucketUpper(i))
			if i == histBuckets-1 && s.Max > u {
				// Overflow bucket: its nominal bound understates; the
				// observed maximum is the only honest answer.
				return s.Max
			}
			if u > s.Max {
				u = s.Max // never report past the observed maximum
			}
			return u
		}
	}
	return s.Max
}

// Buckets invokes fn for every non-empty bucket in ascending order with
// the bucket's inclusive upper bound (ns) and its count. Used by the
// Prometheus renderer.
func (s *HistogramSnapshot) Buckets(fn func(upperNs, count uint64)) {
	for i, c := range s.buckets {
		if c != 0 {
			fn(bucketUpper(i), c)
		}
	}
}
