package obs

import (
	"sort"
	"sync"
	"time"
)

// TraceSlots is the capacity of a TraceRing: the slowest TraceSlots
// frames seen since startup are retained.
const TraceSlots = 32

// FrameTrace is the span breakdown of one frame through the streaming
// runtime: where the frame's wall time went, which degradation rung it
// ran at, and whether it hit its deadline. Durations are nanoseconds in
// the JSON form (field names carry the _ns suffix).
type FrameTrace struct {
	// Seq is the frame's pipeline submission sequence number; Worker is
	// the rt.Config.MetricsID of the pipeline that scanned it (the serve
	// supervisor sets it to the worker index).
	Seq    uint64 `json:"seq"`
	Worker int    `json:"worker"`
	// Rung is the degradation rung the frame was scanned at.
	Rung int `json:"rung"`
	// Wait is queue time before the scan loop picked the frame up; Total
	// is the detection wall time; Margin is Deadline - Total (negative
	// when the deadline was missed).
	Wait     time.Duration `json:"wait_ns"`
	Total    time.Duration `json:"total_ns"`
	Deadline time.Duration `json:"deadline_ns"`
	Margin   time.Duration `json:"margin_ns"`
	// Stages is the per-stage nanosecond breakdown, indexed like
	// StageNames(). The stage sum is at most Total; the remainder is
	// glue (slicing, sorting, scheduling) outside the named stages.
	Stages [NumStages]int64 `json:"stages_ns"`
	// ArenaMiss reports that the frame's scratch checkout grew fresh
	// buffers instead of reusing pooled ones.
	ArenaMiss bool `json:"arena_miss"`
	// Missed reports a deadline miss; Failed any per-frame error.
	Missed bool `json:"missed"`
	Failed bool `json:"failed"`
	// Hung reports that the liveness watchdog abandoned this frame's scan
	// (its Stages are zero — a hung frame never reports where it stuck)
	// and wedged the pipeline.
	Hung bool `json:"hung"`
}

// TraceRing retains the slowest-N frame traces in preallocated slots.
// Record is allocation-free (one short critical section per frame); the
// zero value is ready to use.
type TraceRing struct {
	mu    sync.Mutex
	n     int
	slots [TraceSlots]FrameTrace
}

// Record offers a trace. It is kept if the ring has a free slot or the
// frame is slower than the ring's current fastest entry.
func (r *TraceRing) Record(t *FrameTrace) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.n < len(r.slots) {
		r.slots[r.n] = *t
		r.n++
		r.mu.Unlock()
		return
	}
	min := 0
	for i := 1; i < r.n; i++ {
		if r.slots[i].Total < r.slots[min].Total {
			min = i
		}
	}
	if t.Total > r.slots[min].Total {
		r.slots[min] = *t
	}
	r.mu.Unlock()
}

// Len returns the number of retained traces.
func (r *TraceRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Snapshot returns the retained traces, slowest first. It allocates (it
// runs on scrape paths, not frame paths).
func (r *TraceRing) Snapshot() []FrameTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]FrameTrace, r.n)
	copy(out, r.slots[:r.n])
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out
}
