// Package obs is the zero-allocation observability layer of the detection
// stack: atomic counters and gauges, preallocated log-spaced latency
// histograms, a per-frame stage recorder, and a fixed-size ring of frame
// trace spans retaining the slowest frames.
//
// The paper's headline claims are latency claims (one 64x128 window every
// 36 cycles, a 1080p frame in under 10 ms, 60 fps at two scales), so every
// performance PR against this tree needs per-stage accounting to be
// measurable: where did a slow frame spend its budget — HOG, pyramid
// build, window scan, NMS, or queue wait? This package answers that
// without disturbing the hot path it measures:
//
//   - recording is allocation-free and branch-cheap: counters and
//     histogram buckets are plain atomics, trace slots are preallocated,
//     and every hook is nil-safe so the metrics-off path costs one
//     pointer test (pinned by TestObsRecordAllocs, and transitively by
//     the hog/core allocation budgets with metrics enabled);
//   - a Metrics value is a passive registry — nothing in this package
//     starts goroutines or timers; the instrumented layers own their
//     timing boundaries and push durations in;
//   - snapshots (histogram quantiles, trace dumps, Prometheus rendering)
//     allocate freely: they run on scrape paths, not frame paths.
//
// Wiring: core.Config.Metrics carries a *DetectRecorder through the
// detect path (hog front end, featpyr level builds, scan, NMS),
// rt.Config.Metrics aggregates per-frame results and traces, and
// internal/serve exposes the registry as GET /metricsz (Prometheus text)
// and GET /tracez (slowest-frames JSON).
package obs

import (
	"sync/atomic"
	"time"
)

// Stage identifies one timed stage of the per-frame detection path. The
// stages partition the work a frame pays for between entering a detector
// and its detections being emitted; StageDecode is recorded by callers
// that decode an on-the-wire frame first (internal/serve).
type Stage int

const (
	// StageDecode is wire-format decoding (e.g. PGM parsing in serve).
	StageDecode Stage = iota
	// StageHOGCells is gradient + orientation-binned cell histogramming.
	StageHOGCells
	// StageHOGNorm is block assembly and normalization.
	StageHOGNorm
	// StagePyramid is pyramid construction past the base feature map (all
	// level resampling; in image-pyramid mode the whole per-level
	// resize+HOG loop is accounted here).
	StagePyramid
	// StageScan is the sliding-window classifier scan over all levels.
	StageScan
	// StageNMS is non-maximum suppression.
	StageNMS

	// NumStages is the number of Stage values; arrays indexed by Stage
	// have this length.
	NumStages int = iota
)

var stageNames = [NumStages]string{
	"decode", "hog_cells", "hog_norm", "pyramid", "scan", "nms",
}

// String returns the stage's snake_case label (used as the Prometheus
// stage="..." label value).
func (s Stage) String() string {
	if s < 0 || int(s) >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// StageNames returns the labels of all stages, indexed by Stage.
func StageNames() [NumStages]string { return stageNames }

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; all methods are nil-safe no-ops on a nil receiver.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adds n (n may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Metrics is the passive metrics registry of one detection service: the
// per-stage and per-frame latency histograms, the runtime counters, and
// the slowest-frames trace ring. The zero value is ready to use; all
// fields record atomically, so one Metrics may be shared by every
// pipeline, worker, and scrape handler of a process. Per-frame *stage*
// scratch is not here — that lives in DetectRecorder, one per concurrent
// detect lane.
type Metrics struct {
	// Stage holds one latency histogram per detection stage.
	Stage [NumStages]Histogram
	// PyrLevel observes each individual pyramid-level build (featpyr
	// resample or fixed-point scale), finer-grained than StagePyramid.
	PyrLevel Histogram
	// Frame observes end-to-end per-frame detection latency (excluding
	// queue wait).
	Frame Histogram
	// Wait observes time spent queued before the scan loop picked the
	// frame up.
	Wait Histogram

	// FramesIn/FramesOut/FramesDropped mirror the rt.Pipeline counters
	// across every pipeline sharing this registry.
	FramesIn, FramesOut, FramesDropped Counter
	// DeadlineMisses, Errors and Panics count per-frame outcomes.
	DeadlineMisses, Errors, Panics Counter
	// FramesHung counts frames abandoned by the liveness watchdog: the
	// scan ran HangTimeout past dispatch without returning, so the
	// pipeline declared it hung, emitted rt.ErrHung, and wedged.
	FramesHung Counter
	// WedgedPipelines gauges pipelines currently in the terminal Wedged
	// state (incremented when the watchdog fires, decremented when the
	// wedged pipeline is retired by Close).
	WedgedPipelines Gauge
	// AbandonedScanners gauges scan goroutines the watchdog abandoned
	// that have not yet unstuck and exited. A goroutine stuck in
	// non-cancellable code cannot be killed, only detached; this gauge is
	// the leak ledger that lets goroutine-settling checks (internal/chaos)
	// tolerate exactly the accounted-for leaks and no more.
	AbandonedScanners Gauge
	// Degrades and Recovers count degradation-ladder rung transitions.
	Degrades, Recovers Counter
	// ArenaHits and ArenaMisses count frame-arena scratch checkouts that
	// were served from the pool versus freshly grown.
	ArenaHits, ArenaMisses Counter

	// ROIScans counts frames scanned under a track-guided region
	// restriction (internal/roi), ROIFullScans the scheduler's dense
	// cadence frames, and ROIRegions the total regions across restricted
	// frames (ROIRegions/ROIScans is the mean regions per restricted
	// scan). ROIActivePipelines gauges pipelines currently operating at an
	// ROI rung of their degradation ladder.
	ROIScans, ROIFullScans, ROIRegions Counter
	ROIActivePipelines                 Gauge

	// CascadeWindows counts windows entering the staged early-rejection
	// scorer, CascadeAccepted the subset that survived every stage (and so
	// received an exact score), and CascadeBlocks the HOG blocks actually
	// evaluated — the work the dense scan would have multiplied out is
	// CascadeWindows * blocks-per-window, so the pruning ratio falls out of
	// these three numbers. Scan shards accumulate locally and fold in once
	// per shard, keeping the window loop free of shared-cache-line traffic.
	CascadeWindows, CascadeAccepted, CascadeBlocks Counter
	// CascadeStageRejects[k] counts windows rejected right after cascade
	// stage k (stage-rank order, not raster row). Window geometries deeper
	// than the bank clamp into the last slot.
	CascadeStageRejects [CascadeStages]Counter

	// Traces retains the slowest frames seen so far.
	Traces TraceRing
}

// CascadeStages is the size of the per-stage rejection counter bank; the
// paper's 64x128 window has 16 block-row stages, so 32 leaves headroom for
// exotic window geometries without making the registry grow per detector.
const CascadeStages = 32

// CascadeStats is a point-in-time snapshot of the cascade counters, as
// exposed on /statsz.
type CascadeStats struct {
	Windows      uint64   `json:"windows"`
	Accepted     uint64   `json:"accepted"`
	Blocks       uint64   `json:"blocks_evaluated"`
	MeanBlocks   float64  `json:"mean_blocks_evaluated"`
	StageRejects []uint64 `json:"stage_rejects,omitempty"`
}

// CascadeSnapshot captures the cascade counters. MeanBlocks is the average
// number of blocks evaluated per staged window (0 with no traffic);
// StageRejects is trimmed of trailing all-zero stages.
func (m *Metrics) CascadeSnapshot() CascadeStats {
	if m == nil {
		return CascadeStats{}
	}
	s := CascadeStats{
		Windows:  m.CascadeWindows.Load(),
		Accepted: m.CascadeAccepted.Load(),
		Blocks:   m.CascadeBlocks.Load(),
	}
	if s.Windows > 0 {
		s.MeanBlocks = float64(s.Blocks) / float64(s.Windows)
	}
	last := -1
	var rejects [CascadeStages]uint64
	for i := range m.CascadeStageRejects {
		rejects[i] = m.CascadeStageRejects[i].Load()
		if rejects[i] != 0 {
			last = i
		}
	}
	if last >= 0 {
		s.StageRejects = append([]uint64(nil), rejects[:last+1]...)
	}
	return s
}

// ROIStats is a point-in-time snapshot of the temporal ROI scheduler
// counters, as exposed on /statsz.
type ROIStats struct {
	Scans           uint64  `json:"scans"`
	FullScans       uint64  `json:"full_scans"`
	Regions         uint64  `json:"regions"`
	MeanRegions     float64 `json:"mean_regions"`
	ActivePipelines int64   `json:"active_pipelines"`
}

// ROISnapshot captures the ROI scheduler counters. MeanRegions is the
// average region count per restricted scan (0 with no traffic).
func (m *Metrics) ROISnapshot() ROIStats {
	if m == nil {
		return ROIStats{}
	}
	s := ROIStats{
		Scans:           m.ROIScans.Load(),
		FullScans:       m.ROIFullScans.Load(),
		Regions:         m.ROIRegions.Load(),
		ActivePipelines: m.ROIActivePipelines.Load(),
	}
	if s.Scans > 0 {
		s.MeanRegions = float64(s.Regions) / float64(s.Scans)
	}
	return s
}

// NewMetrics returns an empty registry. (The zero value works too; the
// constructor exists for symmetry and future options.)
func NewMetrics() *Metrics { return &Metrics{} }

// DetectRecorder is the per-lane stage recorder handed to a detector via
// core.Config.Metrics: it folds stage durations into the shared Metrics
// histograms and keeps the current frame's per-stage breakdown for the
// trace span. One recorder serves one frame at a time (the rt scan loop
// is single-frame; concurrent pipelines each get their own recorder,
// sharing the registry). All methods are nil-safe, so instrumented code
// records unconditionally and the metrics-off path costs one branch.
type DetectRecorder struct {
	m     *Metrics
	frame [NumStages]int64 // ns per stage of the frame in flight
}

// NewDetectRecorder returns a recorder feeding m.
func NewDetectRecorder(m *Metrics) *DetectRecorder {
	return &DetectRecorder{m: m}
}

// Metrics returns the shared registry (nil on a nil recorder).
func (r *DetectRecorder) Metrics() *Metrics {
	if r == nil {
		return nil
	}
	return r.m
}

// BeginFrame clears the per-frame stage breakdown. The detector calls it
// at the top of each frame.
func (r *DetectRecorder) BeginFrame() {
	if r == nil {
		return
	}
	r.frame = [NumStages]int64{}
}

// Observe records d against stage s: the shared histogram gets one
// observation and the current frame's breakdown accumulates (a stage may
// be recorded multiple times per frame, e.g. per-level HOG in image
// pyramid mode).
func (r *DetectRecorder) Observe(s Stage, d time.Duration) {
	if r == nil || r.m == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	r.frame[s] += int64(d)
	r.m.Stage[s].Observe(d)
}

// ObserveLevel records one pyramid-level build duration.
func (r *DetectRecorder) ObserveLevel(d time.Duration) {
	if r == nil || r.m == nil {
		return
	}
	r.m.PyrLevel.Observe(d)
}

// LevelTimer returns the per-level build histogram for layers that time
// levels themselves (featpyr.ScaleConfig.LevelTimer), or nil.
func (r *DetectRecorder) LevelTimer() *Histogram {
	if r == nil || r.m == nil {
		return nil
	}
	return &r.m.PyrLevel
}

// FrameStages returns the per-stage nanosecond breakdown of the frame in
// flight (zeroes on a nil recorder).
func (r *DetectRecorder) FrameStages() [NumStages]int64 {
	if r == nil {
		return [NumStages]int64{}
	}
	return r.frame
}
