package obs

import (
	"testing"
	"time"
)

// TestObsRecordAllocs pins every hot-path record operation at zero
// allocations: counters, gauges, histogram observations, per-frame stage
// recording, and trace-ring insertion (both the filling and the full,
// evicting regime). The whole observability layer rides the detection
// hot path, so any allocation here would break the TestFrontEndAllocs /
// TestDetectAllocs budgets with metrics enabled.
func TestObsRecordAllocs(t *testing.T) {
	m := NewMetrics()
	r := NewDetectRecorder(m)
	var c Counter
	var g Gauge
	var h Histogram
	tr := FrameTrace{Total: time.Hour} // slower than everything: always evicts

	check := func(name string, fn func()) {
		t.Helper()
		if n := testing.AllocsPerRun(100, fn); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, n)
		}
	}

	check("Counter.Inc", func() { c.Inc() })
	check("Counter.Add", func() { c.Add(3) })
	check("Gauge.Set", func() { g.Set(7) })
	check("Histogram.Observe", func() { h.Observe(123 * time.Microsecond) })
	check("DetectRecorder.BeginFrame", func() { r.BeginFrame() })
	check("DetectRecorder.Observe", func() {
		r.Observe(StageScan, time.Millisecond)
		r.Observe(StageHOGCells, time.Microsecond)
	})
	check("DetectRecorder.ObserveLevel", func() { r.ObserveLevel(time.Millisecond) })
	check("DetectRecorder.FrameStages", func() { _ = r.FrameStages() })
	// The first TraceSlots records fill the ring; the rest exercise the
	// full-ring fast rejection. Then seed a genuinely-evicting regime.
	var ring TraceRing
	check("TraceRing.Record/filling", func() { ring.Record(&tr) })
	for i := 0; i <= TraceSlots; i++ {
		m.Traces.Record(&FrameTrace{Total: time.Duration(i)})
	}
	check("TraceRing.Record/full", func() { m.Traces.Record(&tr) })

	// Nil-safe no-op paths (the metrics-off configuration) must also be
	// free.
	var nilR *DetectRecorder
	var nilH *Histogram
	check("nil recorder", func() {
		nilR.BeginFrame()
		nilR.Observe(StageScan, time.Millisecond)
		nilR.ObserveLevel(time.Millisecond)
	})
	check("nil histogram", func() { nilH.Observe(time.Millisecond) })
}
