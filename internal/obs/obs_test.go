package obs

import (
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBucketIndexMonotone checks the log-linear bucket layout: indices
// are monotone in the value, every value lands within its bucket's
// bounds, and the layout is contiguous from 0.
func TestBucketIndexMonotone(t *testing.T) {
	last := -1
	for _, v := range []uint64{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 31, 32,
		1000, 1 << 20, 1<<20 + 1, 1 << 30, 1 << 39, 1<<40 - 1, 1 << 40, 1 << 50} {
		i := bucketIndex(v)
		if i < last {
			t.Fatalf("bucketIndex(%d) = %d < previous %d: not monotone", v, i, last)
		}
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range [0,%d)", v, i, histBuckets)
		}
		if v < 1<<histMaxExp && bucketUpper(i) < v {
			t.Errorf("value %d exceeds its bucket upper bound %d (bucket %d)", v, bucketUpper(i), i)
		}
		last = i
	}
	// Bounds are strictly increasing, so cumulative walks are well-formed.
	for i := 1; i < histBuckets; i++ {
		if bucketUpper(i) <= bucketUpper(i-1) {
			t.Fatalf("bucketUpper not increasing at %d: %d <= %d", i, bucketUpper(i), bucketUpper(i-1))
		}
	}
}

// TestHistogramQuantiles records a known distribution and checks the
// quantiles land within the documented 12.5% bucket error.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(7))
	vals := make([]time.Duration, 0, 5000)
	for i := 0; i < 5000; i++ {
		d := time.Duration(rng.Intn(10_000_000)) * time.Microsecond / 1000 // up to 10ms
		vals = append(vals, d)
		h.Observe(d)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	s := h.Snapshot()
	if s.Count != 5000 {
		t.Fatalf("count %d, want 5000", s.Count)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got := s.Quantile(q)
		want := vals[int(q*float64(len(vals)))-1]
		if got < want {
			t.Errorf("q%.2f = %s below true %s (quantiles must not understate)", q, got, want)
		}
		if float64(got) > float64(want)*1.130+float64(time.Microsecond) {
			t.Errorf("q%.2f = %s more than 13%% above true %s", q, got, want)
		}
	}
	if s.Max != vals[len(vals)-1] {
		t.Errorf("max %s, want %s", s.Max, vals[len(vals)-1])
	}
	if got, want := s.Mean(), s.Sum/time.Duration(s.Count); got != want {
		t.Errorf("mean %s, want %s", got, want)
	}
}

// TestHistogramQuantileExact pins the quantile accessor against exactly
// known values: a 1..100 ms ramp (one observation per millisecond) has
// p50 = 50ms, p95 = 95ms, p99 = 99ms by construction. The accessor must
// never understate (it reports the containing bucket's upper bound,
// clamped to the observed max) and must overstate by at most the 12.5%
// bucket-error bound the hedging delay (internal/gateway) relies on: a
// hedge timer derived from an overstated p95 fires late and wastes the
// budget window, so the bound is load-bearing, not cosmetic.
func TestHistogramQuantileExact(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	for _, tc := range []struct {
		q     float64
		exact time.Duration
	}{
		{0.5, 50 * time.Millisecond},
		{0.95, 95 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
	} {
		got := h.Quantile(tc.q) // the snapshot-free accessor under test
		if got < tc.exact {
			t.Errorf("Quantile(%.2f) = %s understates exact %s", tc.q, got, tc.exact)
		}
		if maxErr := tc.exact / 8; got > tc.exact+maxErr {
			t.Errorf("Quantile(%.2f) = %s exceeds exact %s by more than 12.5%% (%s allowed)",
				tc.q, got, tc.exact, maxErr)
		}
		if snap := h.Snapshot(); snap.Quantile(tc.q) != got {
			t.Errorf("accessor and snapshot disagree at q=%.2f: %s vs %s",
				tc.q, got, snap.Quantile(tc.q))
		}
	}
	// Nil receiver: the accessor is an observability hook and must be safe
	// wherever a possibly-nil *Histogram travels.
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Error("nil histogram Quantile must return 0")
	}
}

// TestHistogramEdges covers empty, negative, and overflow observations.
func TestHistogramEdges(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Quantile(0.5) != 0 || s.Mean() != 0 || s.Max != 0 {
		t.Error("empty histogram must report zeroes")
	}
	h.Observe(-time.Second) // clamps to 0
	h.Observe(100 * time.Hour)
	s = h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("count %d, want 2", s.Count)
	}
	if s.Quantile(1) != 100*time.Hour {
		t.Errorf("q1 = %s, want the observed max", s.Quantile(1))
	}
	var nilH *Histogram
	nilH.Observe(time.Second) // must not panic
	if nilH.Snapshot().Count != 0 {
		t.Error("nil histogram snapshot not empty")
	}
}

// TestHistogramConcurrent hammers Observe from many goroutines; counters
// must add up (run under -race in tier-1).
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const gor, per = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < gor; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g*per+i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != gor*per {
		t.Errorf("count %d, want %d", s.Count, gor*per)
	}
}

// TestTraceRingRetainsSlowest fills the ring past capacity and checks it
// keeps exactly the slowest TraceSlots frames, slowest first.
func TestTraceRingRetainsSlowest(t *testing.T) {
	var r TraceRing
	for i := 0; i < 3*TraceSlots; i++ {
		r.Record(&FrameTrace{Seq: uint64(i), Total: time.Duration(i) * time.Millisecond})
	}
	got := r.Snapshot()
	if len(got) != TraceSlots {
		t.Fatalf("ring holds %d, want %d", len(got), TraceSlots)
	}
	for i, tr := range got {
		want := time.Duration(3*TraceSlots-1-i) * time.Millisecond
		if tr.Total != want {
			t.Errorf("slot %d: total %s, want %s", i, tr.Total, want)
		}
	}
	// A fast frame must not evict anything once the ring is full of
	// slower ones.
	r.Record(&FrameTrace{Seq: 999, Total: time.Microsecond})
	for _, tr := range r.Snapshot() {
		if tr.Seq == 999 {
			t.Error("fast frame evicted a slower trace")
		}
	}
}

// TestDetectRecorder checks per-frame accumulation, reset, and nil
// safety.
func TestDetectRecorder(t *testing.T) {
	m := NewMetrics()
	r := NewDetectRecorder(m)
	r.BeginFrame()
	r.Observe(StageScan, 2*time.Millisecond)
	r.Observe(StageScan, 3*time.Millisecond) // accumulates within a frame
	r.Observe(StageNMS, time.Millisecond)
	st := r.FrameStages()
	if st[StageScan] != int64(5*time.Millisecond) {
		t.Errorf("scan stage %d, want %d", st[StageScan], 5*time.Millisecond)
	}
	if got := m.Stage[StageScan].Snapshot().Count; got != 2 {
		t.Errorf("scan histogram count %d, want 2 (one per Observe)", got)
	}
	r.BeginFrame()
	if st := r.FrameStages(); st[StageScan] != 0 || st[StageNMS] != 0 {
		t.Error("BeginFrame did not clear the stage scratch")
	}
	var nilR *DetectRecorder
	nilR.BeginFrame()
	nilR.Observe(StageScan, time.Second)
	nilR.ObserveLevel(time.Second)
	if nilR.FrameStages() != ([NumStages]int64{}) || nilR.LevelTimer() != nil || nilR.Metrics() != nil {
		t.Error("nil recorder must be inert")
	}
}

// TestWritePrometheus smoke-tests the text rendering: parseable lines,
// the expected families, and counter values that match the registry.
func TestWritePrometheus(t *testing.T) {
	m := NewMetrics()
	r := NewDetectRecorder(m)
	r.Observe(StageScan, 5*time.Millisecond)
	m.Frame.Observe(7 * time.Millisecond)
	m.FramesOut.Add(3)
	var b strings.Builder
	m.WritePrometheus(&b, "pd")
	out := b.String()
	for _, want := range []string{
		`pd_stage_seconds{stage="scan",quantile="0.5"}`,
		`pd_stage_seconds_count{stage="scan"} 1`,
		"pd_frame_seconds_count 1",
		"pd_frames_out_total 3",
		"# TYPE pd_frames_out_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(line, "#") && len(strings.Fields(line)) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

// TestSummary smoke-tests the CLI table.
func TestSummary(t *testing.T) {
	m := NewMetrics()
	m.Stage[StageHOGCells].Observe(time.Millisecond)
	m.Frame.Observe(2 * time.Millisecond)
	s := m.Summary()
	if !strings.Contains(s, "hog_cells") || !strings.Contains(s, "frame") {
		t.Errorf("summary missing rows:\n%s", s)
	}
}

// TestStageString pins the label set (the Prometheus stage label values
// are part of the scrape contract).
func TestStageString(t *testing.T) {
	want := []string{"decode", "hog_cells", "hog_norm", "pyramid", "scan", "nms"}
	if NumStages != len(want) {
		t.Fatalf("NumStages = %d, want %d", NumStages, len(want))
	}
	for i, w := range want {
		if got := Stage(i).String(); got != w {
			t.Errorf("Stage(%d) = %q, want %q", i, got, w)
		}
	}
	if Stage(-1).String() != "unknown" || Stage(NumStages).String() != "unknown" {
		t.Error("out-of-range stages must stringify as unknown")
	}
}

// TestCascadeSnapshot pins the snapshot semantics the cascade scan relies
// on: nil-safety, the mean-blocks derivation, and trailing-zero trimming of
// the per-stage rejection bank (including the clamp slot).
func TestCascadeSnapshot(t *testing.T) {
	var nilM *Metrics
	if s := nilM.CascadeSnapshot(); s.Windows != 0 || s.StageRejects != nil {
		t.Errorf("nil registry snapshot %+v", s)
	}
	m := NewMetrics()
	if s := m.CascadeSnapshot(); s.MeanBlocks != 0 || s.StageRejects != nil {
		t.Errorf("empty registry snapshot %+v", s)
	}
	m.CascadeWindows.Add(8)
	m.CascadeAccepted.Add(2)
	m.CascadeBlocks.Add(20)
	m.CascadeStageRejects[1].Add(5)
	m.CascadeStageRejects[CascadeStages-1].Add(1) // deep-geometry clamp slot
	s := m.CascadeSnapshot()
	if s.Windows != 8 || s.Accepted != 2 || s.Blocks != 20 {
		t.Errorf("snapshot %+v", s)
	}
	if s.MeanBlocks != 2.5 {
		t.Errorf("mean blocks %v, want 2.5", s.MeanBlocks)
	}
	if len(s.StageRejects) != CascadeStages {
		t.Fatalf("rejects trimmed to %d with the last slot set", len(s.StageRejects))
	}
	if s.StageRejects[1] != 5 || s.StageRejects[CascadeStages-1] != 1 {
		t.Errorf("stage rejects %v", s.StageRejects)
	}
}

// TestWritePrometheusCascade checks the cascade counters' exposition:
// totals always render (counters are monotone from process start), but the
// stage label family and the mean gauge appear only with traffic.
func TestWritePrometheusCascade(t *testing.T) {
	m := NewMetrics()
	var quiet strings.Builder
	m.WritePrometheus(&quiet, "pd")
	if strings.Contains(quiet.String(), "pd_cascade_stage_rejects_total{") {
		t.Error("quiet registry renders stage-reject samples")
	}
	if strings.Contains(quiet.String(), "pd_cascade_mean_blocks_evaluated") {
		t.Error("quiet registry renders the mean gauge")
	}

	m.CascadeWindows.Add(4)
	m.CascadeAccepted.Add(1)
	m.CascadeBlocks.Add(10)
	m.CascadeStageRejects[3].Add(3)
	var b strings.Builder
	m.WritePrometheus(&b, "pd")
	out := b.String()
	for _, want := range []string{
		"# TYPE pd_cascade_windows_total counter",
		"pd_cascade_windows_total 4",
		"pd_cascade_accepted_total 1",
		"pd_cascade_blocks_evaluated_total 10",
		"# TYPE pd_cascade_stage_rejects_total counter",
		`pd_cascade_stage_rejects_total{stage="3"} 3`,
		"# TYPE pd_cascade_mean_blocks_evaluated gauge",
		"pd_cascade_mean_blocks_evaluated 2.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(line, "#") && len(strings.Fields(line)) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}
