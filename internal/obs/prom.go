package obs

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Prometheus text-format rendering. Everything here runs on the scrape
// path and allocates freely; nothing here touches the record hot path.
//
// Histograms render as Prometheus summaries (quantile label + _sum +
// _count) plus a companion _max_seconds gauge: the log-spaced buckets
// give calibrated p50/p95/p99 directly, which keeps scrapes small and
// the acceptance math (stage sums vs. frame sums) one subtraction away.

// seconds renders a duration as float seconds.
func seconds(d time.Duration) float64 { return d.Seconds() }

// WriteCounterLine writes one counter sample. labels is the rendered
// label set without braces ("" for none), e.g. `worker="0"`.
func WriteCounterLine(w io.Writer, name, labels string, v uint64) {
	if labels != "" {
		fmt.Fprintf(w, "%s{%s} %d\n", name, labels, v)
	} else {
		fmt.Fprintf(w, "%s %d\n", name, v)
	}
}

// WriteGaugeLine writes one gauge sample.
func WriteGaugeLine(w io.Writer, name, labels string, v float64) {
	if labels != "" {
		fmt.Fprintf(w, "%s{%s} %g\n", name, labels, v)
	} else {
		fmt.Fprintf(w, "%s %g\n", name, v)
	}
}

// WriteSummary renders one histogram snapshot as a Prometheus summary
// (p50/p95/p99 quantile samples plus _sum, _count, and a _max_seconds
// companion gauge). labels is the rendered label set without braces (""
// for none). Exported so layers outside this package with their own
// histograms (internal/gateway's per-replica latency) render the same
// shape the shared registry does.
func WriteSummary(w io.Writer, name, labels string, s HistogramSnapshot) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	for _, q := range [...]struct {
		l string
		q float64
	}{{"0.5", 0.5}, {"0.95", 0.95}, {"0.99", 0.99}} {
		fmt.Fprintf(w, "%s{%s%squantile=\"%s\"} %g\n", name, labels, sep, q.l, seconds(s.Quantile(q.q)))
	}
	if labels != "" {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, seconds(s.Sum))
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, s.Count)
		fmt.Fprintf(w, "%s_max_seconds{%s} %g\n", name, labels, seconds(s.Max))
	} else {
		fmt.Fprintf(w, "%s_sum %g\n", name, seconds(s.Sum))
		fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
		fmt.Fprintf(w, "%s_max_seconds %g\n", name, seconds(s.Max))
	}
}

// WritePrometheus renders the registry in Prometheus text exposition
// format with the given metric-name prefix (conventionally "pd").
func (m *Metrics) WritePrometheus(w io.Writer, prefix string) {
	if m == nil {
		return
	}
	p := func(name string) string { return prefix + "_" + name }

	fmt.Fprintf(w, "# TYPE %s summary\n", p("stage_seconds"))
	for s := Stage(0); int(s) < NumStages; s++ {
		snap := m.Stage[s].Snapshot()
		if snap.Count == 0 {
			continue
		}
		WriteSummary(w, p("stage_seconds"), `stage="`+s.String()+`"`, snap)
	}
	for _, h := range [...]struct {
		name string
		h    *Histogram
	}{
		{"pyramid_level_seconds", &m.PyrLevel},
		{"frame_seconds", &m.Frame},
		{"queue_wait_seconds", &m.Wait},
	} {
		fmt.Fprintf(w, "# TYPE %s summary\n", p(h.name))
		WriteSummary(w, p(h.name), "", h.h.Snapshot())
	}

	for _, c := range [...]struct {
		name string
		c    *Counter
	}{
		{"frames_in_total", &m.FramesIn},
		{"frames_out_total", &m.FramesOut},
		{"frames_dropped_total", &m.FramesDropped},
		{"deadline_misses_total", &m.DeadlineMisses},
		{"frame_errors_total", &m.Errors},
		{"frame_panics_total", &m.Panics},
		{"frames_hung_total", &m.FramesHung},
		{"degrade_events_total", &m.Degrades},
		{"recover_events_total", &m.Recovers},
		{"arena_hits_total", &m.ArenaHits},
		{"arena_misses_total", &m.ArenaMisses},
		{"cascade_windows_total", &m.CascadeWindows},
		{"cascade_accepted_total", &m.CascadeAccepted},
		{"cascade_blocks_evaluated_total", &m.CascadeBlocks},
		{"roi_scans_total", &m.ROIScans},
		{"roi_full_scans_total", &m.ROIFullScans},
		{"roi_regions_total", &m.ROIRegions},
	} {
		fmt.Fprintf(w, "# TYPE %s counter\n", p(c.name))
		WriteCounterLine(w, p(c.name), "", c.c.Load())
	}
	// Per-stage rejection counters: only stages that have fired render, so
	// a cascade-off service does not pad scrapes with 32 zero lines.
	wroteStageType := false
	for i := range m.CascadeStageRejects {
		v := m.CascadeStageRejects[i].Load()
		if v == 0 {
			continue
		}
		if !wroteStageType {
			fmt.Fprintf(w, "# TYPE %s counter\n", p("cascade_stage_rejects_total"))
			wroteStageType = true
		}
		WriteCounterLine(w, p("cascade_stage_rejects_total"), fmt.Sprintf(`stage="%d"`, i), v)
	}
	if cs := m.CascadeSnapshot(); cs.Windows > 0 {
		fmt.Fprintf(w, "# TYPE %s gauge\n", p("cascade_mean_blocks_evaluated"))
		WriteGaugeLine(w, p("cascade_mean_blocks_evaluated"), "", cs.MeanBlocks)
	}
	if rs := m.ROISnapshot(); rs.Scans > 0 {
		fmt.Fprintf(w, "# TYPE %s gauge\n", p("roi_mean_regions"))
		WriteGaugeLine(w, p("roi_mean_regions"), "", rs.MeanRegions)
	}
	fmt.Fprintf(w, "# TYPE %s gauge\n", p("roi_active_pipelines"))
	WriteGaugeLine(w, p("roi_active_pipelines"), "", float64(m.ROIActivePipelines.Load()))
	fmt.Fprintf(w, "# TYPE %s gauge\n", p("wedged_pipelines"))
	WriteGaugeLine(w, p("wedged_pipelines"), "", float64(m.WedgedPipelines.Load()))
	fmt.Fprintf(w, "# TYPE %s gauge\n", p("abandoned_scanners"))
	WriteGaugeLine(w, p("abandoned_scanners"), "", float64(m.AbandonedScanners.Load()))
	WriteGaugeLine(w, p("trace_slots"), "", float64(m.Traces.Len()))
}

// Summary renders a human-readable per-stage latency table for CLI
// output (pddetect -stream, examples/dashcam).
func (m *Metrics) Summary() string {
	if m == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %10s %10s %10s %10s\n", "stage", "count", "p50", "p95", "p99", "max")
	row := func(name string, s HistogramSnapshot) {
		if s.Count == 0 {
			return
		}
		fmt.Fprintf(&b, "%-12s %8d %10s %10s %10s %10s\n", name, s.Count,
			fmtDur(s.Quantile(0.5)), fmtDur(s.Quantile(0.95)),
			fmtDur(s.Quantile(0.99)), fmtDur(s.Max))
	}
	for s := Stage(0); int(s) < NumStages; s++ {
		row(s.String(), m.Stage[s].Snapshot())
	}
	row("pyr_level", m.PyrLevel.Snapshot())
	row("queue_wait", m.Wait.Snapshot())
	row("frame", m.Frame.Snapshot())
	return b.String()
}

// fmtDur rounds a duration to a dashboard-friendly precision.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Microsecond).String()
	}
}
